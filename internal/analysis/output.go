package analysis

// Derived-output requests: the declarative form of the §6 data products
// (slices, projections, radial profiles, collapsed-object catalogs and
// raw snapshots) that the sim job service evaluates at root-step
// boundaries and the enzogo -output flag evaluates in one-shot runs.
// An OutputRequest says *what* to derive and *when* (a cadence in root
// steps or code time); Evaluate turns it into a self-contained Artifact
// (PGM/PNG/JSON/snapshot bytes) using the same hierarchy-aware kernels as
// the one-shot CLI tools, driven by the caller's par worker budget.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"maps"
	"math"
	"slices"
	"strconv"
	"strings"

	"repro/internal/amr"
	"repro/internal/snapshot"
	"repro/internal/units"
)

// OutputKind names one family of derived data products.
type OutputKind string

// The supported product families.
const (
	// KindSlice samples a 2-D plane of a cell field at the finest
	// covering resolution (the Fig. 3 quantity when field=logrho).
	KindSlice OutputKind = "slice"
	// KindProjection integrates a cell field along an axis — the §6
	// surface-density / projected X-ray map.
	KindProjection OutputKind = "projection"
	// KindPyramid is KindProjection re-rendered for scale-out serving: a
	// deep-zoom tile container (fixed PyramidTileSize PGM tiles at
	// power-of-two downsample levels) instead of one monolithic image.
	// Level-0 tiles reassemble byte-for-byte into the PGM of the
	// equivalent projection request. See BuildTileSet.
	KindPyramid OutputKind = "pyramid"
	// KindProfile is the Fig. 4 mass-weighted radial profile about the
	// current densest point.
	KindProfile OutputKind = "profile"
	// KindClumps is the §6 collapsed-object catalog: density peaks above
	// a threshold with their separations and enclosed masses.
	KindClumps OutputKind = "clumps"
	// KindSnapshot is the full self-describing run state (the
	// internal/snapshot format), so a consumer can restart or re-analyze
	// offline without touching the service host's disk.
	KindSnapshot OutputKind = "snapshot"
	// KindCheckpoint is a restart checkpoint: the same self-describing
	// payload as KindSnapshot under a checkpoint_* name. It exists as a
	// distinct kind so checkpoint cadence rides the same OutputPlan
	// machinery as every other product while consumers (the sim job
	// store, an enzogo -output run writing restart files) can route it
	// differently from science products. The sim service reserves it for
	// its own durability machinery and rejects it in job requests.
	KindCheckpoint OutputKind = "checkpoint"
)

// OutputFields lists the cell quantities slices and projections accept,
// keyed by the OutputRequest.Field name.
var OutputFields = map[string]string{
	"rho":      "gas density [code units]",
	"logrho":   "log10 gas density",
	"dmrho":    "dark-matter density [code units]",
	"eint":     "specific internal energy [code units]",
	"pressure": "gas pressure (gamma-1)*rho*eint [code units]",
	"temp":     "temperature [K] (species-aware on chemistry runs)",
	"vx":       "x velocity [code units]",
	"vy":       "y velocity [code units]",
	"vz":       "z velocity [code units]",
	"xray":     "X-ray bremsstrahlung emissivity [erg cm^-3 s^-1] (chemistry runs)",
}

// Image encodings for slice and projection products.
const (
	FormatPGM  = "pgm"  // 8-bit binary PGM, auto-scaled (default)
	FormatPNG  = "png"  // 8-bit grayscale PNG, auto-scaled
	FormatJSON = "json" // ImagePayload with the raw float64 samples
)

// OutputRequest declares one derived data product and its cadence. The
// zero cadence (Every == 0 and EveryTime == 0) means "once, at the end of
// the run"; Every = k fires after every k-th root step; EveryTime = T
// fires whenever code time crosses a multiple of T. Unset knobs take the
// kind's defaults (see Normalize). Requests are attached to sim.Request
// (service jobs and enzobatch sweep rows) or passed to enzogo -output.
type OutputRequest struct {
	// Kind selects the product family. Required.
	Kind OutputKind `json:"kind"`
	// Field is the sampled cell quantity of a slice or projection (see
	// OutputFields; default "rho"). Ignored by the other kinds.
	Field string `json:"field,omitempty"`
	// Axis is the slice normal / projection direction: 0=x (the zero
	// value, hence the default), 1=y, 2=z.
	Axis int `json:"axis,omitempty"`
	// Coord is the slice-plane position in box units (default 0.5; an
	// explicit 0 reads as unset — use a small offset for the 0-plane of
	// the periodic box).
	Coord float64 `json:"coord,omitempty"`
	// N is the image resolution (n×n pixels, default 64) or the number
	// of radial profile bins (default 24).
	N int `json:"n,omitempty"`
	// NSamp is the number of line-of-sight samples of a projection
	// (default N).
	NSamp int `json:"nsamp,omitempty"`
	// Every fires the request after every Every-th root step (0 = only
	// at the end of the run).
	Every int `json:"every,omitempty"`
	// EveryTime fires the request whenever code time crosses a multiple
	// of EveryTime (0 = disabled). The first root step never fires a
	// time cadence — there is no previous time to cross from.
	EveryTime float64 `json:"every_time,omitempty"`
	// Format encodes image products: "pgm" (default), "png" or "json".
	Format string `json:"format,omitempty"`
	// Threshold is the clump-finder density threshold in code units
	// (default 10).
	Threshold float64 `json:"threshold,omitempty"`
	// MinSep is the minimum clump separation in box units (default 0.05).
	MinSep float64 `json:"min_sep,omitempty"`
}

// Normalize validates the request and fills every unset knob with its
// kind's default, zeroing knobs the kind does not use — so physically
// identical requests have identical canonical forms no matter how
// sparsely they were spelled.
func (r OutputRequest) Normalize() (OutputRequest, error) {
	switch r.Kind {
	case KindSlice, KindProjection, KindPyramid:
		if r.Field == "" {
			r.Field = "rho"
		}
		if _, ok := OutputFields[r.Field]; !ok {
			return r, fmt.Errorf("analysis: output field %q unknown (have %s)", r.Field, fieldNames())
		}
		if r.Axis < 0 || r.Axis > 2 {
			return r, fmt.Errorf("analysis: output axis %d not in 0..2", r.Axis)
		}
		if r.N == 0 {
			if r.Kind == KindPyramid {
				r.N = 256
			} else {
				r.N = 64
			}
		}
		if r.N < 4 || r.N > 4096 {
			return r, fmt.Errorf("analysis: output resolution n=%d not in 4..4096", r.N)
		}
		if r.Kind == KindPyramid {
			// Tiles are always PGM; the container is the format.
			if r.Format != "" {
				return r, fmt.Errorf("analysis: pyramid outputs have no format knob (tiles are PGM)")
			}
			if r.N < PyramidTileSize || r.N&(r.N-1) != 0 {
				return r, fmt.Errorf("analysis: pyramid resolution n=%d must be a power of two >= %d", r.N, PyramidTileSize)
			}
		} else {
			if r.Format == "" {
				r.Format = FormatPGM
			}
			if r.Format != FormatPGM && r.Format != FormatPNG && r.Format != FormatJSON {
				return r, fmt.Errorf("analysis: output format %q not pgm|png|json", r.Format)
			}
		}
		if r.Kind == KindSlice {
			if r.Coord == 0 {
				r.Coord = 0.5
			}
			if r.Coord < 0 || r.Coord >= 1 {
				return r, fmt.Errorf("analysis: slice coord %g not in [0,1)", r.Coord)
			}
			r.NSamp = 0
		} else {
			if r.NSamp == 0 {
				r.NSamp = r.N
			}
			if r.NSamp < 1 || r.NSamp > 4096 {
				return r, fmt.Errorf("analysis: projection nsamp=%d not in 1..4096", r.NSamp)
			}
			r.Coord = 0
		}
		r.Threshold, r.MinSep = 0, 0
	case KindProfile:
		if r.N == 0 {
			r.N = 24
		}
		if r.N < 1 || r.N > 4096 {
			return r, fmt.Errorf("analysis: profile bins n=%d not in 1..4096", r.N)
		}
		r.Field, r.Axis, r.Coord, r.NSamp, r.Format = "", 0, 0, 0, ""
		r.Threshold, r.MinSep = 0, 0
	case KindClumps:
		if r.Threshold == 0 {
			r.Threshold = 10
		}
		if r.Threshold < 0 || math.IsNaN(r.Threshold) || math.IsInf(r.Threshold, 0) {
			return r, fmt.Errorf("analysis: clump threshold %g must be finite and positive", r.Threshold)
		}
		if r.MinSep == 0 {
			r.MinSep = 0.05
		}
		if r.MinSep <= 0 || r.MinSep > 1 {
			return r, fmt.Errorf("analysis: clump min_sep %g not in (0,1]", r.MinSep)
		}
		r.Field, r.Axis, r.Coord, r.N, r.NSamp, r.Format = "", 0, 0, 0, 0, ""
	case KindSnapshot, KindCheckpoint:
		r.Field, r.Axis, r.Coord, r.N, r.NSamp, r.Format = "", 0, 0, 0, 0, ""
		r.Threshold, r.MinSep = 0, 0
	default:
		return r, fmt.Errorf("analysis: output kind %q unknown (want slice|projection|pyramid|profile|clumps|snapshot|checkpoint)", r.Kind)
	}
	if r.Every < 0 {
		return r, fmt.Errorf("analysis: output cadence every=%d must be >= 0", r.Every)
	}
	if r.EveryTime < 0 || math.IsNaN(r.EveryTime) || math.IsInf(r.EveryTime, 0) {
		return r, fmt.Errorf("analysis: output cadence every_time=%g must be finite and >= 0", r.EveryTime)
	}
	return r, nil
}

func fieldNames() string {
	return strings.Join(slices.Sorted(maps.Keys(OutputFields)), "|")
}

// Canonical renders a normalized request as a deterministic string —
// every knob in fixed order — so that a job's output set participates in
// the sim scheduler's dedupe/cache identity.
func (r OutputRequest) Canonical() string {
	return fmt.Sprintf("%s(field=%s;axis=%d;coord=%s;n=%d;nsamp=%d;every=%d;everytime=%s;format=%s;threshold=%s;minsep=%s)",
		r.Kind, r.Field, r.Axis, fmtG(r.Coord), r.N, r.NSamp, r.Every,
		fmtG(r.EveryTime), r.Format, fmtG(r.Threshold), fmtG(r.MinSep))
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CanonicalOutputs renders an ordered output-request list canonically:
// "[]" when empty, otherwise "[req1+req2+...]" in request order (order is
// identity — it numbers the artifacts).
func CanonicalOutputs(reqs []OutputRequest) string {
	parts := make([]string, len(reqs))
	for i, r := range reqs {
		parts[i] = r.Canonical()
	}
	return "[" + strings.Join(parts, "+") + "]"
}

// ParseOutputRequest parses the compact CLI spec accepted by the enzogo
// -output flag: "kind[,key=value...]" with keys field, axis, coord, n,
// nsamp, every, everytime, format, threshold, minsep. For example:
//
//	projection,field=rho,axis=2,n=128,every=5
//	slice,field=temp,coord=0.25,format=png
//	profile,n=32
//	clumps,threshold=50,minsep=0.1
//	snapshot,every=10
//
// The result is not yet normalized; callers hand it to NewOutputPlan (or
// Normalize) for validation and defaulting.
func ParseOutputRequest(spec string) (OutputRequest, error) {
	parts := strings.Split(spec, ",")
	r := OutputRequest{Kind: OutputKind(strings.TrimSpace(parts[0]))}
	if r.Kind == "" {
		return r, fmt.Errorf("analysis: empty output spec")
	}
	for _, kv := range parts[1:] {
		key, raw, ok := strings.Cut(kv, "=")
		if !ok {
			return r, fmt.Errorf("analysis: output spec %q: %q is not key=value", spec, kv)
		}
		key, raw = strings.TrimSpace(key), strings.TrimSpace(raw)
		var err error
		switch key {
		case "field":
			r.Field = raw
		case "format":
			r.Format = raw
		case "axis":
			r.Axis, err = strconv.Atoi(raw)
		case "n":
			r.N, err = strconv.Atoi(raw)
		case "nsamp":
			r.NSamp, err = strconv.Atoi(raw)
		case "every":
			r.Every, err = strconv.Atoi(raw)
		case "coord":
			r.Coord, err = strconv.ParseFloat(raw, 64)
		case "everytime":
			r.EveryTime, err = strconv.ParseFloat(raw, 64)
		case "threshold":
			r.Threshold, err = strconv.ParseFloat(raw, 64)
		case "minsep":
			r.MinSep, err = strconv.ParseFloat(raw, 64)
		default:
			return r, fmt.Errorf("analysis: output spec %q: unknown key %q", spec, key)
		}
		if err != nil {
			return r, fmt.Errorf("analysis: output spec %q: bad %s: %v", spec, key, err)
		}
	}
	return r, nil
}

// Artifact is one evaluated data product: self-describing metadata plus
// the encoded payload bytes, ready to be stored, served over HTTP, or
// written to a file named Name.
type Artifact struct {
	// Name is the product's file name, unique per (request, step):
	// "projection_rho_z_step0004.pgm". Plans prefix it with the request
	// index, so two requests for overlapping products cannot collide.
	Name string `json:"name"`
	// Kind and Field echo the producing request.
	Kind  OutputKind `json:"kind"`
	Field string     `json:"field,omitempty"`
	// Step is the 0-based root step the product was derived after, and
	// Time the code time of that state.
	Step int     `json:"step"`
	Time float64 `json:"time"`
	// ContentType is the payload MIME type.
	ContentType string `json:"content_type"`
	// RawSize is the uncompressed payload size of a compressed product
	// (snapshot/checkpoint gob bytes before gzip); 0 for products whose
	// Data is not compressed. len(Data) is always the on-wire size, so
	// artifact indexes can report both sides of the compression.
	RawSize int64 `json:"raw_size,omitempty"`
	// Data is the encoded payload. Omitted from JSON metadata listings.
	Data []byte `json:"-"`
}

// ImagePayload is the JSON encoding of a slice or projection product
// (Format "json"): the request echo plus the raw float64 samples, row
// index = the second in-plane axis.
type ImagePayload struct {
	Kind  OutputKind  `json:"kind"`
	Field string      `json:"field"`
	Axis  int         `json:"axis"`
	Coord float64     `json:"coord,omitempty"`
	Step  int         `json:"step"`
	Time  float64     `json:"time"`
	Data  [][]float64 `json:"data"`
}

// ProfilePayload is the JSON encoding of a profile product.
type ProfilePayload struct {
	Step    int      `json:"step"`
	Time    float64  `json:"time"`
	Profile *Profile `json:"profile"`
}

// ClumpsPayload is the JSON encoding of a clump-catalog product.
type ClumpsPayload struct {
	Step      int               `json:"step"`
	Time      float64           `json:"time"`
	Threshold float64           `json:"threshold"`
	MinSep    float64           `json:"min_sep"`
	Clumps    []CollapsedObject `json:"clumps"`
}

// FieldExtractor returns the cell-quantity sampler for a named output
// field on this hierarchy (temperature and X-ray emissivity need the
// run's units and species).
func FieldExtractor(h *amr.Hierarchy, name string) (func(g *amr.Grid, i, j, k int) float64, error) {
	gamma := h.Cfg.Hydro.Gamma
	switch name {
	case "rho":
		return func(g *amr.Grid, i, j, k int) float64 { return g.State.Rho.At(i, j, k) }, nil
	case "logrho":
		return func(g *amr.Grid, i, j, k int) float64 {
			return math.Log10(math.Max(g.State.Rho.At(i, j, k), 1e-300))
		}, nil
	case "dmrho":
		return func(g *amr.Grid, i, j, k int) float64 { return g.DMRho.At(i, j, k) }, nil
	case "eint":
		return func(g *amr.Grid, i, j, k int) float64 { return g.State.Eint.At(i, j, k) }, nil
	case "pressure":
		return func(g *amr.Grid, i, j, k int) float64 {
			return (gamma - 1) * g.State.Rho.At(i, j, k) * g.State.Eint.At(i, j, k)
		}, nil
	case "temp":
		return temperatureExtractor(h), nil
	case "vx":
		return func(g *amr.Grid, i, j, k int) float64 { return g.State.Vx.At(i, j, k) }, nil
	case "vy":
		return func(g *amr.Grid, i, j, k int) float64 { return g.State.Vy.At(i, j, k) }, nil
	case "vz":
		return func(g *amr.Grid, i, j, k int) float64 { return g.State.Vz.At(i, j, k) }, nil
	case "xray":
		return func(g *amr.Grid, i, j, k int) float64 { return XRayEmissivity(h, g, i, j, k) }, nil
	}
	return nil, fmt.Errorf("analysis: output field %q unknown (have %s)", name, fieldNames())
}

// Temperature returns the cell temperature [K], species-aware on
// chemistry runs and mean-molecular-weight-neutral otherwise — the same
// convention as RadialProfile's Temp column.
func Temperature(h *amr.Hierarchy, g *amr.Grid, i, j, k int) float64 {
	return temperatureExtractor(h)(g, i, j, k)
}

func temperatureExtractor(h *amr.Hierarchy) func(g *amr.Grid, i, j, k int) float64 {
	gamma := h.Cfg.Hydro.Gamma
	u := h.Cfg.Units
	if !h.Cfg.Chemistry {
		return func(g *amr.Grid, i, j, k int) float64 {
			return u.TempFromE(g.State.Eint.At(i, j, k), gamma, units.MeanMolecularWeightNeutral)
		}
	}
	return func(g *amr.Grid, i, j, k int) float64 {
		mu := cellMu(g, i, j, k)
		return g.State.Eint.At(i, j, k) * u.Velocity * u.Velocity * (gamma - 1) * mu * units.MProton / units.KBoltzmann
	}
}

// Evaluate derives the product from the hierarchy's current state after
// root step `step` (0-based), running the sampling kernels on `workers`
// par goroutines (0 = NumCPU, 1 = serial). The request must be
// normalized. problem is the registry name embedded in snapshot products.
// Artifacts are bitwise independent of the worker count.
func (r OutputRequest) Evaluate(h *amr.Hierarchy, problem string, step, workers int) (Artifact, error) {
	art := Artifact{Kind: r.Kind, Field: r.Field, Step: step, Time: h.Time}
	switch r.Kind {
	case KindSlice:
		value, err := FieldExtractor(h, r.Field)
		if err != nil {
			return art, err
		}
		data := Slice(h, r.Axis, r.Coord, 0, 1, 0, 1, r.N, workers, value)
		return r.encodeImage(art, data)
	case KindProjection:
		value, err := FieldExtractor(h, r.Field)
		if err != nil {
			return art, err
		}
		data := ProjectField(h, r.Axis, 0, 1, 0, 1, r.N, r.NSamp, workers, value)
		return r.encodeImage(art, data)
	case KindPyramid:
		value, err := FieldExtractor(h, r.Field)
		if err != nil {
			return art, err
		}
		// Same base map (and auto-scaling) as the equivalent projection,
		// so level-0 tiles stitch back into that request's exact PGM.
		data := ProjectField(h, r.Axis, 0, 1, 0, 1, r.N, r.NSamp, workers, value)
		payload, err := BuildTileSet(data, PyramidTileSize, workers)
		if err != nil {
			return art, err
		}
		art.Name = fmt.Sprintf("pyramid_%s_%c_step%04d.tiles", r.Field, "xyz"[r.Axis], step)
		art.ContentType = TileSetContentType
		art.Data = payload
		return art, nil
	case KindProfile:
		center, _ := DensestPoint(h)
		pr, err := RadialProfile(h, center, ProfileParams{
			RMin:    0.5 * h.FinestDx(),
			RMax:    0.5,
			NBins:   r.N,
			Gamma:   h.Cfg.Hydro.Gamma,
			Units:   h.Cfg.Units,
			Workers: workers,
		})
		if err != nil {
			return art, err
		}
		art.Name = fmt.Sprintf("profile_step%04d.json", step)
		return encodeJSON(art, ProfilePayload{Step: step, Time: h.Time, Profile: pr})
	case KindClumps:
		clumps := FindCollapsedObjects(h, r.Threshold, r.MinSep)
		if clumps == nil {
			clumps = []CollapsedObject{} // an empty catalog is [], not null
		}
		art.Name = fmt.Sprintf("clumps_step%04d.json", step)
		return encodeJSON(art, ClumpsPayload{
			Step: step, Time: h.Time,
			Threshold: r.Threshold, MinSep: r.MinSep, Clumps: clumps,
		})
	case KindSnapshot, KindCheckpoint:
		data, raw, err := snapshot.EncodeSized(h, problem)
		if err != nil {
			return art, err
		}
		art.Name = fmt.Sprintf("%s_step%04d.gob.gz", r.Kind, step)
		art.ContentType = "application/gzip"
		art.RawSize = raw
		art.Data = data
		return art, nil
	}
	return art, fmt.Errorf("analysis: output kind %q unknown", r.Kind)
}

// encodeImage finishes a slice/projection artifact in the request's
// format.
func (r OutputRequest) encodeImage(art Artifact, data [][]float64) (Artifact, error) {
	stem := fmt.Sprintf("%s_%s_%c_step%04d", r.Kind, r.Field, "xyz"[r.Axis], art.Step)
	var buf bytes.Buffer
	switch r.Format {
	case FormatPGM:
		if err := WritePGM(&buf, data); err != nil {
			return art, err
		}
		art.Name, art.ContentType = stem+".pgm", "image/x-portable-graymap"
	case FormatPNG:
		if err := WritePNG(&buf, data); err != nil {
			return art, err
		}
		art.Name, art.ContentType = stem+".png", "image/png"
	case FormatJSON:
		art.Name = stem + ".json"
		return encodeJSON(art, ImagePayload{
			Kind: r.Kind, Field: r.Field, Axis: r.Axis, Coord: r.Coord,
			Step: art.Step, Time: art.Time, Data: data,
		})
	default:
		return art, fmt.Errorf("analysis: output format %q not pgm|png|json", r.Format)
	}
	art.Data = buf.Bytes()
	return art, nil
}

func encodeJSON(art Artifact, v any) (Artifact, error) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return art, err
	}
	art.ContentType = "application/json"
	art.Data = append(data, '\n')
	return art, nil
}

// OutputPlan evaluates a normalized output-request list against a run's
// root-step stream: Step after every completed root step, Finish once
// the run ends (so every request yields at least its final-state
// product). Both the sim job service and the enzogo one-shot driver run
// their cadence through the same plan, so "every 5 steps" means the same
// thing on both paths.
type OutputPlan struct {
	// Requests is the normalized request list; artifact names are
	// prefixed with the index into it ("02_slice_rho_z_step0004.pgm").
	Requests []OutputRequest

	prevTime float64
	havePrev bool
	emitted  []int // last step each request was evaluated at, -1 = never
}

// NewOutputPlan normalizes and validates the requests. A nil/empty list
// yields a plan whose Step and Finish do nothing.
func NewOutputPlan(reqs []OutputRequest) (*OutputPlan, error) {
	p := &OutputPlan{
		Requests: make([]OutputRequest, len(reqs)),
		emitted:  make([]int, len(reqs)),
	}
	for i, r := range reqs {
		n, err := r.Normalize()
		if err != nil {
			return nil, fmt.Errorf("output request %d: %w", i, err)
		}
		p.Requests[i] = n
		p.emitted[i] = -1
	}
	return p, nil
}

// Prime seeds the time-cadence baseline, as if the plan had already
// observed a step at code time t. A run resumed from a checkpoint primes
// its plans with the checkpoint's time so every_time cadences continue
// from where the interrupted run left off instead of re-firing at the
// first post-resume step.
func (p *OutputPlan) Prime(t float64) {
	p.prevTime, p.havePrev = t, true
}

// Step fires every request whose cadence is due after root step `step`
// (0-based), handing each evaluated artifact to emit. The first emit
// error aborts the sweep.
func (p *OutputPlan) Step(h *amr.Hierarchy, problem string, step, workers int, emit func(Artifact) error) error {
	crossed := func(interval float64) bool {
		return p.havePrev && interval > 0 &&
			math.Floor(h.Time/interval) > math.Floor(p.prevTime/interval)
	}
	for i, r := range p.Requests {
		due := (r.Every > 0 && (step+1)%r.Every == 0) || crossed(r.EveryTime)
		if !due {
			continue
		}
		if err := p.emit(h, problem, i, step, workers, emit); err != nil {
			return err
		}
	}
	p.prevTime, p.havePrev = h.Time, true
	return nil
}

// Finish evaluates every request that has not already produced its
// product for `lastStep` (the final completed root step) — the guarantee
// that a request with no cadence still yields its end-of-run product
// exactly once.
func (p *OutputPlan) Finish(h *amr.Hierarchy, problem string, lastStep, workers int, emit func(Artifact) error) error {
	if lastStep < 0 {
		lastStep = 0 // a run stopped before its first step still reports its initial state
	}
	for i := range p.Requests {
		if p.emitted[i] == lastStep {
			continue
		}
		if err := p.emit(h, problem, i, lastStep, workers, emit); err != nil {
			return err
		}
	}
	return nil
}

func (p *OutputPlan) emit(h *amr.Hierarchy, problem string, i, step, workers int, emit func(Artifact) error) error {
	art, err := p.Requests[i].Evaluate(h, problem, step, workers)
	if err != nil {
		return fmt.Errorf("output request %d (%s): %w", i, p.Requests[i].Kind, err)
	}
	art.Name = fmt.Sprintf("%02d_%s", i, art.Name)
	p.emitted[i] = step
	return emit(art)
}
