package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// PGM output for the Jacques-style slice renders (Fig. 3): each frame is a
// grayscale image of log density, auto-scaled to the data range.

// WritePGM writes a 2-D field as an 8-bit binary PGM image, mapping
// [min,max] of the data to [0,255].
func WritePGM(w io.Writer, data [][]float64) error {
	n1 := len(data)
	if n1 == 0 {
		return fmt.Errorf("analysis: empty slice data")
	}
	n0 := len(data[0])
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", n0, n1)
	quantizeRows(data, func(_ int, pix []byte) {
		bw.Write(pix)
	})
	return bw.Flush()
}

// SavePGM writes the image to a file path.
func SavePGM(path string, data [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WritePGM(f, data)
}
