// Package analysis implements the paper's §6 analysis toolkit: finding
// collapsed objects (densest points), mass-weighted spherically averaged
// radial profiles about them (the Fig. 4 quantities: number density,
// enclosed gas mass, species mass fractions, temperature, radial velocity
// and sound speed), and hierarchy-aware slice extraction for the zooming
// visualizations of Fig. 3. All routines understand the structure of the
// hierarchy: each point of space is represented by its finest covering
// grid, and coarse cells under refined regions are skipped.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/amr"
	"repro/internal/chem"
	"repro/internal/par"
	"repro/internal/units"
)

// DensestPoint returns the box-unit position and density of the maximum
// gas density cell at the finest resolution available.
func DensestPoint(h *amr.Hierarchy) (pos [3]float64, rho float64) {
	rho = math.Inf(-1)
	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		if v := g.State.Rho.At(i, j, k); v > rho {
			rho = v
			pos = [3]float64{x, y, z}
		}
	})
	return
}

// ForEachFinestCell visits every cell of the composite (finest-available)
// solution exactly once, passing the owning grid, cell indices, and the
// cell-center position in box units. Grids are visited level by level in
// hierarchy order and cells in k,j,i order, so the visit sequence is
// deterministic.
func ForEachFinestCell(h *amr.Hierarchy, fn func(g *amr.Grid, i, j, k int, x, y, z float64)) {
	for _, lv := range h.Levels {
		for _, g := range lv {
			forEachUncoveredCell(h, g, fn)
		}
	}
}

// forEachUncoveredCell visits the cells of one grid that are not covered
// by any of its children, in k,j,i order — the per-grid unit of work the
// parallel reductions partition on.
func forEachUncoveredCell(h *amr.Hierarchy, g *amr.Grid, fn func(g *amr.Grid, i, j, k int, x, y, z float64)) {
	r := h.Cfg.Refine
	ex := g.Edge[0].Float64()
	ey := g.Edge[1].Float64()
	ez := g.Edge[2].Float64()
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
		cell:
			for i := 0; i < g.Nx; i++ {
				// Skip if covered by a child.
				gi, gj, gk := (g.Lo[0]+i)*r, (g.Lo[1]+j)*r, (g.Lo[2]+k)*r
				for _, c := range g.Children {
					if c.ContainsGlobal(gi, gj, gk) {
						continue cell
					}
				}
				fn(g, i, j, k,
					ex+(float64(i)+0.5)*g.Dx,
					ey+(float64(j)+0.5)*g.Dx,
					ez+(float64(k)+0.5)*g.Dx)
			}
		}
	}
}

// allGrids flattens the hierarchy into its deterministic grid order
// (level-major, then creation order within a level).
func allGrids(h *amr.Hierarchy) []*amr.Grid {
	var out []*amr.Grid
	for _, lv := range h.Levels {
		out = append(out, lv...)
	}
	return out
}

// Profile holds mass-weighted spherical averages in logarithmic radial
// bins about a center, mirroring the panels of Fig. 4.
type Profile struct {
	Center [3]float64
	// Per-bin geometric quantities.
	R         []float64 // bin-center radius [box units]
	Mass      []float64 // gas mass in bin [code units]
	Enclosed  []float64 // cumulative gas mass within R [code units]
	Density   []float64 // mean gas density [code units]
	DMDensity []float64 // mean dark-matter density [code units]
	Temp      []float64 // mass-weighted temperature [K] (chemistry runs)
	Vr        []float64 // mass-weighted radial velocity [code units]
	Cs        []float64 // mass-weighted sound speed [code units]
	H2Frac    []float64 // H2 mass fraction
	HIFrac    []float64 // HI mass fraction
	CellsUsed int
}

// ProfileParams configures the binning.
type ProfileParams struct {
	RMin, RMax float64 // radial range [box units]
	NBins      int
	Gamma      float64
	// Units converts code energies to temperatures when the run carries
	// no chemistry fields; with chemistry, mu comes from the species.
	Units units.Units
	// Workers bounds the par goroutines used for the binning sweep
	// (0 = NumCPU, 1 = serial — the repository-wide convention).
	Workers int
}

// profilePartial holds one grid's contribution to every bin. Each grid is
// accumulated serially in cell order by whichever worker claims it, and
// the partials are reduced in grid order, so the result is bitwise
// independent of the worker count.
type profilePartial struct {
	mass, vol, dmMass, vr, cs, temp, h2, hi []float64
	cells                                   int
}

// RadialProfile computes mass-weighted spherical averages about center,
// using the minimum-image convention in the periodic box. The sweep over
// grids runs on p.Workers par workers; per-grid partial bins are reduced
// in fixed hierarchy order, so the profile is bitwise identical at any
// worker count.
func RadialProfile(h *amr.Hierarchy, center [3]float64, p ProfileParams) (*Profile, error) {
	if p.NBins < 1 || p.RMin <= 0 || p.RMax <= p.RMin {
		return nil, fmt.Errorf("analysis: bad profile params %+v", p)
	}
	pr := &Profile{Center: center}
	pr.R = make([]float64, p.NBins)
	lrMin, lrMax := math.Log(p.RMin), math.Log(p.RMax)
	dlr := (lrMax - lrMin) / float64(p.NBins)
	for b := 0; b < p.NBins; b++ {
		pr.R[b] = math.Exp(lrMin + (float64(b)+0.5)*dlr)
	}
	nb := p.NBins
	pr.Mass = make([]float64, nb)
	pr.Enclosed = make([]float64, nb)
	pr.Density = make([]float64, nb)
	pr.DMDensity = make([]float64, nb)
	pr.Temp = make([]float64, nb)
	pr.Vr = make([]float64, nb)
	pr.Cs = make([]float64, nb)
	pr.H2Frac = make([]float64, nb)
	pr.HIFrac = make([]float64, nb)
	vol := make([]float64, nb)
	dmMass := make([]float64, nb)

	gamma := p.Gamma
	if gamma <= 1 {
		gamma = 5.0 / 3.0
	}
	hasChem := h.Cfg.Chemistry

	grids := allGrids(h)
	partials := make([]profilePartial, len(grids))
	par.For(p.Workers, len(grids), 1, func(_, lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			pp := &partials[gi]
			pp.mass = make([]float64, nb)
			pp.vol = make([]float64, nb)
			pp.dmMass = make([]float64, nb)
			pp.vr = make([]float64, nb)
			pp.cs = make([]float64, nb)
			pp.temp = make([]float64, nb)
			pp.h2 = make([]float64, nb)
			pp.hi = make([]float64, nb)
			forEachUncoveredCell(h, grids[gi], func(g *amr.Grid, i, j, k int, x, y, z float64) {
				dx := minImage(x - center[0])
				dy := minImage(y - center[1])
				dz := minImage(z - center[2])
				rr := math.Sqrt(dx*dx + dy*dy + dz*dz)
				if rr < 1e-12 {
					rr = 1e-12
				}
				b := int((math.Log(rr) - lrMin) / dlr)
				if b < 0 || b >= nb {
					return
				}
				cv := g.CellVolume()
				rho := g.State.Rho.At(i, j, k)
				m := rho * cv
				pp.mass[b] += m
				pp.vol[b] += cv
				pp.dmMass[b] += g.DMRho.At(i, j, k) * cv
				vr := (g.State.Vx.At(i, j, k)*dx + g.State.Vy.At(i, j, k)*dy + g.State.Vz.At(i, j, k)*dz) / rr
				pp.vr[b] += m * vr
				eint := g.State.Eint.At(i, j, k)
				pp.cs[b] += m * math.Sqrt(gamma*(gamma-1)*eint)
				if hasChem {
					mu := cellMu(g, i, j, k)
					tK := eint * p.Units.Velocity * p.Units.Velocity * (gamma - 1) * mu * units.MProton / units.KBoltzmann
					pp.temp[b] += m * tK
					hi := g.State.Species[chem.HI].At(i, j, k)
					h2 := g.State.Species[chem.H2I].At(i, j, k)
					pp.h2[b] += m * h2 / rho
					pp.hi[b] += m * hi / rho
				} else {
					pp.temp[b] += m * p.Units.TempFromE(eint, gamma, units.MeanMolecularWeightNeutral)
				}
				pp.cells++
			})
		}
	})
	// Fixed-order reduction: grid order, then bin order.
	for gi := range partials {
		pp := &partials[gi]
		for b := 0; b < nb; b++ {
			pr.Mass[b] += pp.mass[b]
			vol[b] += pp.vol[b]
			dmMass[b] += pp.dmMass[b]
			pr.Vr[b] += pp.vr[b]
			pr.Cs[b] += pp.cs[b]
			pr.Temp[b] += pp.temp[b]
			pr.H2Frac[b] += pp.h2[b]
			pr.HIFrac[b] += pp.hi[b]
		}
		pr.CellsUsed += pp.cells
	}

	var cum float64
	for b := 0; b < nb; b++ {
		cum += pr.Mass[b]
		pr.Enclosed[b] = cum
		if pr.Mass[b] > 0 {
			pr.Vr[b] /= pr.Mass[b]
			pr.Cs[b] /= pr.Mass[b]
			pr.Temp[b] /= pr.Mass[b]
			pr.H2Frac[b] /= pr.Mass[b]
			pr.HIFrac[b] /= pr.Mass[b]
		}
		if vol[b] > 0 {
			pr.Density[b] = pr.Mass[b] / vol[b]
			pr.DMDensity[b] = dmMass[b] / vol[b]
		}
	}
	return pr, nil
}

// cellMu returns the mean molecular weight from the cell's species fields.
func cellMu(g *amr.Grid, i, j, k int) float64 {
	var massD, numD float64
	for sp := 0; sp < chem.NumSpecies && sp < len(g.State.Species); sp++ {
		w := chem.AtomicWeight[sp]
		if w == 0 {
			w = 1 // electron field stored as n_e * m_p
		}
		d := g.State.Species[sp].At(i, j, k)
		if sp != chem.Elec {
			massD += d
		}
		numD += d / w
	}
	if numD <= 0 {
		return units.MeanMolecularWeightNeutral
	}
	return massD / numD
}

// minImage folds a separation into [-0.5, 0.5) for the unit periodic box.
func minImage(d float64) float64 {
	for d >= 0.5 {
		d--
	}
	for d < -0.5 {
		d++
	}
	return d
}

// Slice samples a 2-D plane of the composite solution. axis selects the
// normal (0=x: plane spans y,z); coord is the plane position in box units;
// the window [lo0,hi0)x[lo1,hi1) is sampled at n×n points. value extracts
// the quantity from the finest covering grid. Rows are sampled in
// parallel on `workers` par goroutines (0 = NumCPU, 1 = serial); each row
// is written by exactly one worker, so the image is bitwise identical at
// any worker count.
func Slice(h *amr.Hierarchy, axis int, coord float64, lo0, hi0, lo1, hi1 float64, n, workers int,
	value func(g *amr.Grid, i, j, k int) float64) [][]float64 {
	out := make([][]float64, n)
	for b := range out {
		out[b] = make([]float64, n)
	}
	par.For(workers, n, 0, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			c1 := lo1 + (float64(b)+0.5)*(hi1-lo1)/float64(n)
			for a := 0; a < n; a++ {
				c0 := lo0 + (float64(a)+0.5)*(hi0-lo0)/float64(n)
				g, i, j, k := sampleCell(h, axis, coord, c0, c1)
				out[b][a] = value(g, i, j, k)
			}
		}
	})
	return out
}

// sampleCell locates the finest grid cell covering the sample point with
// in-plane coordinates (c0,c1) on the plane axis=coord.
func sampleCell(h *amr.Hierarchy, axis int, coord, c0, c1 float64) (g *amr.Grid, i, j, k int) {
	var x, y, z float64
	switch axis {
	case 0:
		x, y, z = coord, c0, c1
	case 1:
		x, y, z = c0, coord, c1
	default:
		x, y, z = c0, c1, coord
	}
	g = h.FinestGridAt(wrap01(x), wrap01(y), wrap01(z))
	i = clampI(int((wrap01(x)-g.Edge[0].Float64())/g.Dx), g.Nx-1)
	j = clampI(int((wrap01(y)-g.Edge[1].Float64())/g.Dx), g.Ny-1)
	k = clampI(int((wrap01(z)-g.Edge[2].Float64())/g.Dx), g.Nz-1)
	return g, i, j, k
}

// DensitySlice is the Fig. 3 quantity: log10 of gas density.
func DensitySlice(h *amr.Hierarchy, axis int, coord float64, lo0, hi0, lo1, hi1 float64, n, workers int) [][]float64 {
	return Slice(h, axis, coord, lo0, hi0, lo1, hi1, n, workers, func(g *amr.Grid, i, j, k int) float64 {
		return math.Log10(math.Max(g.State.Rho.At(i, j, k), 1e-300))
	})
}

func wrap01(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}

func clampI(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
