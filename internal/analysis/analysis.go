// Package analysis implements the paper's §6 analysis toolkit: finding
// collapsed objects (densest points), mass-weighted spherically averaged
// radial profiles about them (the Fig. 4 quantities: number density,
// enclosed gas mass, species mass fractions, temperature, radial velocity
// and sound speed), and hierarchy-aware slice extraction for the zooming
// visualizations of Fig. 3. All routines understand the structure of the
// hierarchy: each point of space is represented by its finest covering
// grid, and coarse cells under refined regions are skipped.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/amr"
	"repro/internal/chem"
	"repro/internal/units"
)

// DensestPoint returns the box-unit position and density of the maximum
// gas density cell at the finest resolution available.
func DensestPoint(h *amr.Hierarchy) (pos [3]float64, rho float64) {
	rho = math.Inf(-1)
	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		if v := g.State.Rho.At(i, j, k); v > rho {
			rho = v
			pos = [3]float64{x, y, z}
		}
	})
	return
}

// ForEachFinestCell visits every cell of the composite (finest-available)
// solution exactly once, passing the owning grid, cell indices, and the
// cell-center position in box units.
func ForEachFinestCell(h *amr.Hierarchy, fn func(g *amr.Grid, i, j, k int, x, y, z float64)) {
	r := h.Cfg.Refine
	for _, lv := range h.Levels {
		for _, g := range lv {
			ex := g.Edge[0].Float64()
			ey := g.Edge[1].Float64()
			ez := g.Edge[2].Float64()
			for k := 0; k < g.Nz; k++ {
				for j := 0; j < g.Ny; j++ {
				cell:
					for i := 0; i < g.Nx; i++ {
						// Skip if covered by a child.
						gi, gj, gk := (g.Lo[0]+i)*r, (g.Lo[1]+j)*r, (g.Lo[2]+k)*r
						for _, c := range g.Children {
							if c.ContainsGlobal(gi, gj, gk) {
								continue cell
							}
						}
						fn(g, i, j, k,
							ex+(float64(i)+0.5)*g.Dx,
							ey+(float64(j)+0.5)*g.Dx,
							ez+(float64(k)+0.5)*g.Dx)
					}
				}
			}
		}
	}
}

// Profile holds mass-weighted spherical averages in logarithmic radial
// bins about a center, mirroring the panels of Fig. 4.
type Profile struct {
	Center [3]float64
	// Per-bin geometric quantities.
	R         []float64 // bin-center radius [box units]
	Mass      []float64 // gas mass in bin [code units]
	Enclosed  []float64 // cumulative gas mass within R [code units]
	Density   []float64 // mean gas density [code units]
	DMDensity []float64 // mean dark-matter density [code units]
	Temp      []float64 // mass-weighted temperature [K] (chemistry runs)
	Vr        []float64 // mass-weighted radial velocity [code units]
	Cs        []float64 // mass-weighted sound speed [code units]
	H2Frac    []float64 // H2 mass fraction
	HIFrac    []float64 // HI mass fraction
	CellsUsed int
}

// ProfileParams configures the binning.
type ProfileParams struct {
	RMin, RMax float64 // radial range [box units]
	NBins      int
	Gamma      float64
	// Units converts code energies to temperatures when the run carries
	// no chemistry fields; with chemistry, mu comes from the species.
	Units units.Units
}

// RadialProfile computes mass-weighted spherical averages about center,
// using the minimum-image convention in the periodic box.
func RadialProfile(h *amr.Hierarchy, center [3]float64, p ProfileParams) (*Profile, error) {
	if p.NBins < 1 || p.RMin <= 0 || p.RMax <= p.RMin {
		return nil, fmt.Errorf("analysis: bad profile params %+v", p)
	}
	pr := &Profile{Center: center}
	pr.R = make([]float64, p.NBins)
	lrMin, lrMax := math.Log(p.RMin), math.Log(p.RMax)
	dlr := (lrMax - lrMin) / float64(p.NBins)
	for b := 0; b < p.NBins; b++ {
		pr.R[b] = math.Exp(lrMin + (float64(b)+0.5)*dlr)
	}
	nb := p.NBins
	pr.Mass = make([]float64, nb)
	pr.Enclosed = make([]float64, nb)
	pr.Density = make([]float64, nb)
	pr.DMDensity = make([]float64, nb)
	pr.Temp = make([]float64, nb)
	pr.Vr = make([]float64, nb)
	pr.Cs = make([]float64, nb)
	pr.H2Frac = make([]float64, nb)
	pr.HIFrac = make([]float64, nb)
	vol := make([]float64, nb)
	dmMass := make([]float64, nb)

	gamma := p.Gamma
	if gamma <= 1 {
		gamma = 5.0 / 3.0
	}
	hasChem := h.Cfg.Chemistry

	ForEachFinestCell(h, func(g *amr.Grid, i, j, k int, x, y, z float64) {
		dx := minImage(x - center[0])
		dy := minImage(y - center[1])
		dz := minImage(z - center[2])
		rr := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if rr < 1e-12 {
			rr = 1e-12
		}
		b := int((math.Log(rr) - lrMin) / dlr)
		if b < 0 || b >= nb {
			return
		}
		cv := g.CellVolume()
		rho := g.State.Rho.At(i, j, k)
		m := rho * cv
		pr.Mass[b] += m
		vol[b] += cv
		dmMass[b] += g.DMRho.At(i, j, k) * cv
		vr := (g.State.Vx.At(i, j, k)*dx + g.State.Vy.At(i, j, k)*dy + g.State.Vz.At(i, j, k)*dz) / rr
		pr.Vr[b] += m * vr
		eint := g.State.Eint.At(i, j, k)
		pr.Cs[b] += m * math.Sqrt(gamma*(gamma-1)*eint)
		if hasChem {
			mu := cellMu(g, i, j, k)
			tK := eint * p.Units.Velocity * p.Units.Velocity * (gamma - 1) * mu * units.MProton / units.KBoltzmann
			pr.Temp[b] += m * tK
			hi := g.State.Species[chem.HI].At(i, j, k)
			h2 := g.State.Species[chem.H2I].At(i, j, k)
			pr.H2Frac[b] += m * h2 / rho
			pr.HIFrac[b] += m * hi / rho
		} else {
			pr.Temp[b] += m * p.Units.TempFromE(eint, gamma, units.MeanMolecularWeightNeutral)
		}
		pr.CellsUsed++
	})

	var cum float64
	for b := 0; b < nb; b++ {
		cum += pr.Mass[b]
		pr.Enclosed[b] = cum
		if pr.Mass[b] > 0 {
			pr.Vr[b] /= pr.Mass[b]
			pr.Cs[b] /= pr.Mass[b]
			pr.Temp[b] /= pr.Mass[b]
			pr.H2Frac[b] /= pr.Mass[b]
			pr.HIFrac[b] /= pr.Mass[b]
		}
		if vol[b] > 0 {
			pr.Density[b] = pr.Mass[b] / vol[b]
			pr.DMDensity[b] = dmMass[b] / vol[b]
		}
	}
	return pr, nil
}

// cellMu returns the mean molecular weight from the cell's species fields.
func cellMu(g *amr.Grid, i, j, k int) float64 {
	var massD, numD float64
	for sp := 0; sp < chem.NumSpecies && sp < len(g.State.Species); sp++ {
		w := chem.AtomicWeight[sp]
		if w == 0 {
			w = 1 // electron field stored as n_e * m_p
		}
		d := g.State.Species[sp].At(i, j, k)
		if sp != chem.Elec {
			massD += d
		}
		numD += d / w
	}
	if numD <= 0 {
		return units.MeanMolecularWeightNeutral
	}
	return massD / numD
}

// minImage folds a separation into [-0.5, 0.5) for the unit periodic box.
func minImage(d float64) float64 {
	for d >= 0.5 {
		d--
	}
	for d < -0.5 {
		d++
	}
	return d
}

// Slice samples a 2-D plane of the composite solution. axis selects the
// normal (0=x: plane spans y,z); coord is the plane position in box units;
// the window [lo0,hi0)x[lo1,hi1) is sampled at n×n points. value extracts
// the quantity from the finest covering grid.
func Slice(h *amr.Hierarchy, axis int, coord float64, lo0, hi0, lo1, hi1 float64, n int,
	value func(g *amr.Grid, i, j, k int) float64) [][]float64 {
	out := make([][]float64, n)
	for b := range out {
		out[b] = make([]float64, n)
	}
	for b := 0; b < n; b++ {
		c1 := lo1 + (float64(b)+0.5)*(hi1-lo1)/float64(n)
		for a := 0; a < n; a++ {
			c0 := lo0 + (float64(a)+0.5)*(hi0-lo0)/float64(n)
			var x, y, z float64
			switch axis {
			case 0:
				x, y, z = coord, c0, c1
			case 1:
				x, y, z = c0, coord, c1
			default:
				x, y, z = c0, c1, coord
			}
			g := h.FinestGridAt(wrap01(x), wrap01(y), wrap01(z))
			i := int((wrap01(x) - g.Edge[0].Float64()) / g.Dx)
			j := int((wrap01(y) - g.Edge[1].Float64()) / g.Dx)
			k := int((wrap01(z) - g.Edge[2].Float64()) / g.Dx)
			i = clampI(i, g.Nx-1)
			j = clampI(j, g.Ny-1)
			k = clampI(k, g.Nz-1)
			out[b][a] = value(g, i, j, k)
		}
	}
	return out
}

// DensitySlice is the Fig. 3 quantity: log10 of gas density.
func DensitySlice(h *amr.Hierarchy, axis int, coord float64, lo0, hi0, lo1, hi1 float64, n int) [][]float64 {
	return Slice(h, axis, coord, lo0, hi0, lo1, hi1, n, func(g *amr.Grid, i, j, k int) float64 {
		return math.Log10(math.Max(g.State.Rho.At(i, j, k), 1e-300))
	})
}

func wrap01(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}

func clampI(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}
