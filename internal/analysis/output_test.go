package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

func TestOutputRequestNormalizeDefaults(t *testing.T) {
	r, err := OutputRequest{Kind: KindProjection}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Field != "rho" || r.N != 64 || r.NSamp != 64 || r.Format != FormatPGM || r.Coord != 0 {
		t.Fatalf("projection defaults wrong: %+v", r)
	}
	r, err = OutputRequest{Kind: KindSlice}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Coord != 0.5 || r.NSamp != 0 {
		t.Fatalf("slice defaults wrong: %+v", r)
	}
	// Knobs foreign to the kind are zeroed so sparse and fully spelled
	// requests share one canonical form.
	r, err = OutputRequest{Kind: KindProfile, Field: "rho", Axis: 2, Format: "png", Threshold: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.Field != "" || r.Axis != 0 || r.Format != "" || r.Threshold != 0 || r.N != 24 {
		t.Fatalf("profile normalization kept foreign knobs: %+v", r)
	}
	want, _ := OutputRequest{Kind: KindProfile}.Normalize()
	if r.Canonical() != want.Canonical() {
		t.Fatalf("canonical forms differ:\n%s\n%s", r.Canonical(), want.Canonical())
	}
}

func TestOutputRequestNormalizeRejects(t *testing.T) {
	bad := []OutputRequest{
		{Kind: "spectrogram"},
		{Kind: KindSlice, Field: "entropy"},
		{Kind: KindSlice, Axis: 3},
		{Kind: KindSlice, Coord: 1.5},
		{Kind: KindSlice, N: 2},
		{Kind: KindSlice, N: 1 << 20},
		{Kind: KindSlice, Format: "tiff"},
		{Kind: KindProjection, NSamp: -1},
		{Kind: KindClumps, MinSep: 2},
		{Kind: KindSnapshot, Every: -1},
		{Kind: KindSnapshot, EveryTime: -0.5},
	}
	for _, r := range bad {
		if _, err := r.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) did not fail", r)
		}
	}
}

func TestParseOutputRequest(t *testing.T) {
	r, err := ParseOutputRequest("projection,field=temp,axis=1,n=128,nsamp=64,every=5,format=png")
	if err != nil {
		t.Fatal(err)
	}
	want := OutputRequest{Kind: KindProjection, Field: "temp", Axis: 1, N: 128, NSamp: 64, Every: 5, Format: "png"}
	if r != want {
		t.Fatalf("parsed %+v, want %+v", r, want)
	}
	r, err = ParseOutputRequest("clumps,threshold=50,minsep=0.1,everytime=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if r.Threshold != 50 || r.MinSep != 0.1 || r.EveryTime != 0.25 {
		t.Fatalf("parsed %+v", r)
	}
	for _, spec := range []string{"", "slice,axis", "slice,axis=z", "slice,zoom=2"} {
		if _, err := ParseOutputRequest(spec); err == nil {
			t.Errorf("ParseOutputRequest(%q) did not fail", spec)
		}
	}
}

func TestCanonicalOutputsOrderMatters(t *testing.T) {
	a, _ := OutputRequest{Kind: KindSlice}.Normalize()
	b, _ := OutputRequest{Kind: KindProfile}.Normalize()
	if CanonicalOutputs([]OutputRequest{a, b}) == CanonicalOutputs([]OutputRequest{b, a}) {
		t.Fatal("output order must be part of the canonical identity")
	}
	if CanonicalOutputs(nil) != "[]" {
		t.Fatalf("empty canonical %q", CanonicalOutputs(nil))
	}
}

// TestOutputPlanCadence drives a plan through a fake run and checks the
// step/time cadences and the final-product guarantee.
func TestOutputPlanCadence(t *testing.T) {
	h := buildTestHierarchy(t)
	plan, err := NewOutputPlan([]OutputRequest{
		{Kind: KindSlice, N: 8, Every: 2},                // steps 1, 3, ... plus final
		{Kind: KindProfile, N: 4},                        // final only
		{Kind: KindClumps, Threshold: 5, EveryTime: 0.5}, // every 0.5 code time
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	emit := func(a Artifact) error {
		got = append(got, a.Name)
		return nil
	}
	// 5 fake root steps advancing time by 0.3 each: the 0.5 boundary is
	// crossed after steps 1, 2 (0.9→1.2? no: floors 0,1,1,2,2) — crossings
	// at t=0.6 (step 1), t=1.2 (step 3), and t=1.5 (step 4).
	for step := 0; step < 5; step++ {
		h.Time = float64(step+1) * 0.3
		if err := plan.Step(h, "test", step, 1, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := plan.Finish(h, "test", 4, 1, emit); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"00_slice_rho_x_step0001.pgm",
		"02_clumps_step0001.json", // t: 0.3 -> 0.6 crosses 0.5
		"00_slice_rho_x_step0003.pgm",
		"02_clumps_step0003.json",     // t: 0.9 -> 1.2 crosses 1.0
		"02_clumps_step0004.json",     // t: 1.2 -> 1.5 crosses 1.5's floor? 1.5/0.5=3 > 2
		"00_slice_rho_x_step0004.pgm", // final
		"01_profile_step0004.json",    // final
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("plan emitted\n%v\nwant\n%v", got, want)
	}
}

func TestOutputPlanFinishAfterZeroSteps(t *testing.T) {
	h := buildTestHierarchy(t)
	plan, err := NewOutputPlan([]OutputRequest{{Kind: KindSlice, N: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var got []Artifact
	if err := plan.Finish(h, "test", -1, 1, func(a Artifact) error { got = append(got, a); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Step != 0 {
		t.Fatalf("finish after zero steps: %+v", got)
	}
}

func TestEvaluateImageFormats(t *testing.T) {
	h := buildTestHierarchy(t)
	for format, wantPrefix := range map[string][]byte{
		FormatPGM: []byte("P5\n"),
		FormatPNG: {0x89, 'P', 'N', 'G'},
	} {
		r, err := OutputRequest{Kind: KindSlice, N: 16, Format: format}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		a, err := r.Evaluate(h, "test", 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(a.Data, wantPrefix) {
			t.Fatalf("%s artifact starts %q", format, a.Data[:8])
		}
		if a.Step != 3 || a.Kind != KindSlice || a.Field != "rho" {
			t.Fatalf("bad artifact meta %+v", a)
		}
	}
	r, _ := OutputRequest{Kind: KindProjection, N: 8, Format: FormatJSON}.Normalize()
	a, err := r.Evaluate(h, "test", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var payload ImagePayload
	if err := json.Unmarshal(a.Data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Kind != KindProjection || len(payload.Data) != 8 || len(payload.Data[0]) != 8 {
		t.Fatalf("bad image payload %+v", payload)
	}
}

// TestEvaluateSnapshotRoundTrips loads the snapshot product back and
// checks it reproduces the hierarchy it was derived from.
func TestEvaluateSnapshotRoundTrips(t *testing.T) {
	h := buildTestHierarchy(t)
	r, _ := OutputRequest{Kind: KindSnapshot}.Normalize()
	a, err := r.Evaluate(h, "clumptest", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, problem, err := snapshot.Read(bytes.NewReader(a.Data))
	if err != nil {
		t.Fatal(err)
	}
	if problem != "clumptest" {
		t.Fatalf("problem %q", problem)
	}
	if h2.NumGrids() != h.NumGrids() || h2.ChecksumHex() != h.ChecksumHex() {
		t.Fatalf("snapshot artifact does not reproduce the hierarchy: %s vs %s",
			h2.ChecksumHex(), h.ChecksumHex())
	}
}

// TestEvaluateCheckpointKind: the checkpoint product is a restart
// snapshot under a checkpoint_* name, with the compression accounting
// (RawSize) filled in.
func TestEvaluateCheckpointKind(t *testing.T) {
	h := buildTestHierarchy(t)
	r, err := OutputRequest{Kind: KindCheckpoint, Every: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Evaluate(h, "ckpttest", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "checkpoint_step0007.gob.gz" {
		t.Fatalf("checkpoint artifact name %q", a.Name)
	}
	if a.RawSize <= int64(len(a.Data)) {
		t.Fatalf("RawSize %d should exceed compressed size %d", a.RawSize, len(a.Data))
	}
	h2, problem, err := snapshot.Read(bytes.NewReader(a.Data))
	if err != nil {
		t.Fatal(err)
	}
	if problem != "ckpttest" || h2.ChecksumHex() != h.ChecksumHex() {
		t.Fatalf("checkpoint does not reproduce the hierarchy")
	}
}

func TestEvaluateClumpsCatalog(t *testing.T) {
	h := buildTestHierarchy(t)
	r, _ := OutputRequest{Kind: KindClumps, Threshold: 5, MinSep: 0.2}.Normalize()
	a, err := r.Evaluate(h, "test", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var payload ClumpsPayload
	if err := json.Unmarshal(a.Data, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Clumps) != 1 {
		t.Fatalf("catalog %+v, want the single central clump", payload)
	}
	// An empty catalog must encode as [], not null.
	r, _ = OutputRequest{Kind: KindClumps, Threshold: 1e9}.Normalize()
	a, _ = r.Evaluate(h, "test", 2, 1)
	if !bytes.Contains(a.Data, []byte(`"clumps": []`)) {
		t.Fatalf("empty catalog payload: %s", a.Data)
	}
}
