// Shocktube: validate the two hydro solvers (the paper's "double check on
// any result", §3.2.1) against the exact Sod solution landmarks, printing
// both profiles side by side.
//
// The tube is the registered "sod" problem: two mirrored Riemann problems
// in the periodic box (high state between x=0.25 and 0.75), run on the
// full AMR driver. Until t≈0.14 the two wave fans do not interact, so the
// exact-solution landmarks hold on each side.
//
//	go run ./examples/shocktube
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
)

func main() {
	const n = 64
	const tEnd = 0.1

	run := func(solver string) (*core.Simulation, []float64) {
		sim, err := core.New("sod", func(o *problems.Opts) {
			o.RootN = n
			o.MaxLevel = 1
			o.Solver = solver
		})
		if err != nil {
			log.Fatal(err)
		}
		sim.RunUntil(tEnd, 500)
		// Composite density along x through the box center (projection
		// has folded the refined solution onto the root).
		root := sim.H.Root()
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = root.State.Rho.At(i, n/2, n/2)
		}
		return sim, out
	}

	simPPM, ppm := run("ppm")
	_, fd := run("fd")

	fmt.Printf("double Sod tube at t=%.3f (gamma=1.4), density along x\n", simPPM.H.Time)
	fmt.Println("exact landmarks (left fan): post-shock 0.2656 (x~0.075-0.157), contact plateau 0.4263 (x~0.157-0.257)")
	fmt.Printf("%8s %10s %10s\n", "x", "PPM", "FD")
	for i := 0; i < n; i += 2 {
		x := (float64(i) + 0.5) / n
		fmt.Printf("%8.3f %10.4f %10.4f\n", x, ppm[i], fd[i])
	}

	// Quantitative check at the plateaus of the left-hand fan.
	iShock := 115 * n / 1000   // inside the post-shock plateau
	iContact := 200 * n / 1000 // inside the contact plateau
	fmt.Printf("\nplateau checks (want 0.2656 / 0.4263):\n")
	fmt.Printf("  PPM: %.4f / %.4f\n", ppm[iShock], ppm[iContact])
	fmt.Printf("  FD : %.4f / %.4f\n", fd[iShock], fd[iContact])
	fmt.Printf("\nAMR: %d grids, max level %d (refinement tracks the shocks)\n",
		simPPM.H.NumGrids(), simPPM.H.MaxLevel())
}
