// Shocktube: validate the two hydro solvers (the paper's "double check on
// any result", §3.2.1) against the exact Sod solution landmarks, printing
// both profiles side by side.
//
//	go run ./examples/shocktube
package main

import (
	"fmt"

	"repro/internal/hydro"
)

func main() {
	const n = 128
	gammaP := hydro.DefaultParams()
	gammaP.Gamma = 1.4

	run := func(solver hydro.Solver) []float64 {
		s := hydro.NewState(n, 4, 4, 0)
		for k := -hydro.NGhost; k < 4+hydro.NGhost; k++ {
			for j := -hydro.NGhost; j < 4+hydro.NGhost; j++ {
				for i := -hydro.NGhost; i < n+hydro.NGhost; i++ {
					rho, p := 1.0, 1.0
					if i >= n/2 {
						rho, p = 0.125, 0.1
					}
					e := p / ((gammaP.Gamma - 1) * rho)
					s.Rho.Set(i, j, k, rho)
					s.Eint.Set(i, j, k, e)
					s.Etot.Set(i, j, k, e)
				}
			}
		}
		bc := func(st *hydro.State) {
			for _, f := range st.Fields() {
				f.ApplyOutflowBC()
			}
		}
		dx := 1.0 / n
		tNow, step := 0.0, 0
		for tNow < 0.2 {
			dt := hydro.Timestep(s, dx, gammaP)
			if tNow+dt > 0.2 {
				dt = 0.2 - tNow
			}
			hydro.Step3D(s, dx, dt, gammaP, solver, step, bc, nil, nil)
			tNow += dt
			step++
		}
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = s.Rho.At(i, 2, 2)
		}
		return out
	}

	ppm := run(hydro.SolverPPM)
	fd := run(hydro.SolverFD)

	fmt.Println("Sod shock tube at t=0.2 (gamma=1.4), density profiles")
	fmt.Println("exact landmarks: contact plateau 0.4263 (x~0.49-0.69), post-shock 0.2656 (x~0.69-0.85)")
	fmt.Printf("%8s %10s %10s\n", "x", "PPM", "FD")
	for i := 0; i < n; i += 4 {
		x := (float64(i) + 0.5) / n
		fmt.Printf("%8.3f %10.4f %10.4f\n", x, ppm[i], fd[i])
	}

	// Quantitative check at the plateaus.
	fmt.Printf("\nplateau checks (want 0.4263 / 0.2656):\n")
	iContact, iShock := 60*n/100, 78*n/100
	fmt.Printf("  PPM: %.4f / %.4f\n", ppm[iContact], ppm[iShock])
	fmt.Printf("  FD : %.4f / %.4f\n", fd[iContact], fd[iShock])
}
