// Zoomrestart: the paper's §4 workflow end to end — generate nested
// zoom-in initial conditions from the CDM power spectrum, run the
// low-resolution pass, checkpoint, restart from the snapshot, and confirm
// the evolution continues identically.
//
//	go run ./examples/zoomrestart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/problems"
	"repro/internal/snapshot"
)

func main() {
	fmt.Println("generating nested zoom-in ICs (64^3-effective over an 8^3 root)...")
	h, zic, err := problems.CosmologicalZoom(problems.ZoomOpts{
		RootN: 8, StaticLevels: 2, MaxLevel: 3, Seed: 20011110, Redshift: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fine IC level: %d^3 modes; static region %v..%v\n",
		zic.Levels[zic.FineLevel].N, h.Cfg.StaticLo, h.Cfg.StaticHi)
	fmt.Printf("  hierarchy: %d grids over %d levels\n", h.NumGrids(), h.MaxLevel()+1)

	fmt.Println("running 3 root steps of the low-resolution pass...")
	for s := 0; s < 3; s++ {
		h.Step()
		pos, rho := analysis.DensestPoint(h)
		fmt.Printf("  step %d: a=%.5f  peak=%.4g at (%.2f,%.2f,%.2f)\n",
			s, h.Cfg.Cosmo.A, rho, pos[0], pos[1], pos[2])
	}

	dir, err := os.MkdirTemp("", "zoomrestart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "checkpoint.gob.gz")
	if err := snapshot.Save(path, h); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("checkpoint written: %s (%d bytes)\n", path, st.Size())

	// Restart (the paper restarted with additional static levels; here we
	// restart with the same config and verify determinism). The restarted
	// run needs its own expansion-factor integrator — Background is
	// mutable state, not shareable between two evolving hierarchies.
	cfg := h.Cfg
	bg2 := *cfg.Cosmo
	cfg.Cosmo = &bg2
	h2, err := snapshot.Load(path, cfg)
	if err != nil {
		log.Fatal(err)
	}
	h.Step()
	h2.Step()
	_, r1 := analysis.DensestPoint(h)
	_, r2 := analysis.DensestPoint(h2)
	fmt.Printf("continued peak density: original %.6g, restarted %.6g\n", r1, r2)
	if r1 == r2 {
		fmt.Println("restart is bit-identical ✓")
	} else {
		fmt.Println("WARNING: restart diverged")
	}
}
