// Zoomrestart: the paper's §4 workflow end to end — build the nested
// zoom-in problem from the registry, run the low-resolution pass,
// checkpoint, restart from the snapshot, and confirm the evolution
// continues identically.
//
// Snapshots are self-describing: the header embeds the problem name and
// the full run configuration (including the expansion-factor state), so
// the restart needs no caller-supplied config and never shares mutable
// cosmology state with the original run.
//
//	go run ./examples/zoomrestart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/snapshot"
)

func main() {
	fmt.Println("building the zoom problem (64^3-effective over an 8^3 root)...")
	sim, err := core.New("zoom", func(o *problems.Opts) {
		o.RootN = 8
		o.MaxLevel = 3
		o.Seed = 20011110
		o.Chemistry = false
		o.Extra = map[string]float64{"staticlevels": 2, "redshift": 99}
	})
	if err != nil {
		log.Fatal(err)
	}
	h := sim.H
	fmt.Printf("  static region %v..%v\n", h.Cfg.StaticLo, h.Cfg.StaticHi)
	fmt.Printf("  hierarchy: %d grids over %d levels\n", h.NumGrids(), h.MaxLevel()+1)

	fmt.Println("running 3 root steps of the low-resolution pass...")
	for s := 0; s < 3; s++ {
		h.Step()
		pos, rho := analysis.DensestPoint(h)
		fmt.Printf("  step %d: a=%.5f  peak=%.4g at (%.2f,%.2f,%.2f)\n",
			s, h.Cfg.Cosmo.A, rho, pos[0], pos[1], pos[2])
	}

	dir, err := os.MkdirTemp("", "zoomrestart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "checkpoint.gob.gz")
	if err := snapshot.Save(path, h, sim.Problem); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("checkpoint written: %s (%d bytes)\n", path, st.Size())

	// Restart purely from the file: problem name and config come out of
	// the header (the paper restarted with additional static levels —
	// that workflow now mutates h2.Cfg after Load).
	h2, name, err := snapshot.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted problem %q without any caller-supplied config\n", name)
	h.Step()
	h2.Step()
	_, r1 := analysis.DensestPoint(h)
	_, r2 := analysis.DensestPoint(h2)
	fmt.Printf("continued peak density: original %.6g, restarted %.6g\n", r1, r2)
	if r1 == r2 {
		fmt.Println("restart is bit-identical ✓")
	} else {
		fmt.Println("WARNING: restart diverged")
	}
}
