// Firststar: the headline problem — a primordial gas cloud collapsing
// inside a dark-matter overdensity with the full 12-species chemistry,
// reproducing the Fig. 3 zoom frames and Fig. 4 radial profiles at laptop
// scale. This is the workload the paper's evaluation section is built on.
//
//	go run ./examples/firststar
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/units"
)

func main() {
	sim, err := core.New("collapse", func(o *problems.Opts) {
		o.RootN = 16
		o.MaxLevel = 4
	})
	if err != nil {
		log.Fatal(err)
	}
	u := sim.H.Cfg.Units

	fmt.Println("collapsing a primordial cloud (12-species chemistry, self-gravity, AMR)...")
	const outputs = 3
	for out := 0; out < outputs; out++ {
		sim.RunSteps(6)
		pr, err := sim.RadialProfileAtPeak(16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- output %d: t=%.4f, levels=%d, grids=%d ---\n",
			out, sim.H.Time, sim.H.MaxLevel()+1, sim.H.NumGrids())
		fmt.Printf("%10s %12s %10s %10s %10s\n", "r[pc]", "n[cm^-3]", "T[K]", "vr[km/s]", "fH2")
		boxPc := u.Length / units.ParsecCM
		for b := range pr.R {
			if pr.Mass[b] == 0 {
				continue
			}
			fmt.Printf("%10.3g %12.4g %10.4g %10.3f %10.3g\n",
				pr.R[b]*boxPc,
				u.NumberDensity(pr.Density[b], 1.22),
				pr.Temp[b],
				pr.Vr[b]*u.Velocity/1e5,
				pr.H2Frac[b])
		}
	}

	// Fig-3 style zoom frames.
	dir := "firststar_frames"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, img := range sim.ZoomFrames(3, 4, 96) {
		path := filepath.Join(dir, fmt.Sprintf("zoom_%d.pgm", i))
		if err := analysis.SavePGM(path, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Println("\n" + sim.UsageTable())
}
