// Pancake: the Zel'dovich pancake cosmology validation — a single plane
// wave collapsing in an expanding background with gas and dark matter,
// the standard test of the cosmological hydro + N-body + gravity coupling.
//
//	go run ./examples/pancake
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
)

func main() {
	// The registry problem with its epoch knobs adjusted: collapse the
	// caustic earlier than the spec default so 40 steps reach it.
	sim, err := core.New("pancake", func(o *problems.Opts) {
		o.RootN = 32
		o.Extra = map[string]float64{"astart": 0.05, "acollapse": 0.15}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Zel'dovich pancake: a=0.05 to caustic at a=0.15")
	fmt.Printf("%8s %10s %12s %10s\n", "a", "z", "max/min rho", "grids")
	for s := 0; s < 40 && sim.H.Cfg.Cosmo.A < 0.16; s++ {
		sim.Step()
		mn, mx := sim.H.Root().State.Rho.MinMaxActive()
		a := sim.H.Cfg.Cosmo.A
		if s%4 == 0 {
			fmt.Printf("%8.4f %10.2f %12.2f %10d\n", a, 1/a-1, mx/mn, sim.H.NumGrids())
		}
	}

	// Mid-plane density profile along the collapse axis.
	fmt.Println("\ndensity along x at the end (pancake at the caustic plane):")
	root := sim.H.Root()
	for i := 0; i < root.Nx; i += 2 {
		var rho float64
		for j := 0; j < root.Ny; j++ {
			for k := 0; k < root.Nz; k++ {
				rho += root.State.Rho.At(i, j, k)
			}
		}
		rho /= float64(root.Ny * root.Nz)
		fmt.Printf("  x=%.3f  <rho>=%.4f\n", (float64(i)+0.5)/float64(root.Nx), rho)
	}
}
