// Quickstart: build a small self-gravitating collapse with the public
// Simulation API, run it, and print what the hierarchy did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
)

func main() {
	// The headline problem at a very small scale: 16^3 root grid, up to
	// 3 levels of refinement, chemistry off for speed. Problems are
	// resolved by name from the registry; the mutator adjusts the
	// spec's defaults.
	sim, err := core.New("collapse", func(o *problems.Opts) {
		o.RootN = 16
		o.MaxLevel = 3
		o.Chemistry = false
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running 15 root-grid steps of a collapsing primordial clump...")
	for s := 0; s < 15; s++ {
		dt := sim.Step()
		h := sim.History[len(sim.History)-1]
		fmt.Printf("  step %2d: t=%.4f dt=%.2e  levels=%d  grids=%d  peak density=%.3g\n",
			s, h.Time, dt, h.MaxLevel+1, h.NumGrids, h.PeakRho)
	}

	fmt.Println("\ncomponent usage (paper §5 table):")
	fmt.Println(sim.UsageTable())

	pr, err := sim.RadialProfileAtPeak(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("radial density profile about the densest point:")
	for b := range pr.R {
		if pr.Mass[b] == 0 {
			continue
		}
		fmt.Printf("  r=%.4f  density=%.4g  enclosed=%.4g\n", pr.R[b], pr.Density[b], pr.Enclosed[b])
	}
	fmt.Println("\n" + sim.FlopReport())
}
