// Command gridstats runs a collapse and prints the Fig.-5 data series:
// maximum level and number of grids versus time, plus grids-per-level and
// work-per-level distributions at two representative epochs.
//
//	gridstats -steps 30
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
)

func main() {
	steps := flag.Int("steps", 30, "root steps")
	rootN := flag.Int("rootn", 16, "root grid size")
	maxLevel := flag.Int("maxlevel", 5, "max level")
	chem := flag.Bool("chem", true, "chemistry on")
	flag.Parse()

	sim, err := core.New("collapse", func(o *problems.Opts) {
		o.RootN = *rootN
		o.MaxLevel = *maxLevel
		o.Chemistry = *chem
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("# time  maxlevel  ngrids  peak_density")
	for s := 0; s < *steps; s++ {
		sim.Step()
		h := sim.History[len(sim.History)-1]
		fmt.Printf("%8.5f  %2d  %4d  %.4g\n", h.Time, h.MaxLevel, h.NumGrids, h.PeakRho)
	}

	early := sim.History[len(sim.History)/4]
	late := sim.History[len(sim.History)-1]
	fmt.Println("\n# grids per level (early | late)")
	maxLen := len(early.GridsPer)
	if len(late.GridsPer) > maxLen {
		maxLen = len(late.GridsPer)
	}
	for l := 0; l < maxLen; l++ {
		e, lt := 0, 0
		if l < len(early.GridsPer) {
			e = early.GridsPer[l]
		}
		if l < len(late.GridsPer) {
			lt = late.GridsPer[l]
		}
		fmt.Printf("level %2d: %4d | %4d\n", l, e, lt)
	}
	fmt.Println("\n# work per level (late, normalized)")
	var wmax float64
	for _, w := range late.WorkPer {
		if w > wmax {
			wmax = w
		}
	}
	for l, w := range late.WorkPer {
		fmt.Printf("level %2d: %.3f\n", l, w/wmax)
	}
	fmt.Printf("\ngrids created: %d  deleted: %d  rebuilds: %d\n",
		sim.H.Stats.GridsCreated, sim.H.Stats.GridsDeleted, sim.H.Stats.RebuildCount)
}
