// Command perfgate is the CI performance-regression gate: it runs the
// repository's named benchmarks (BenchmarkScaling*, BenchmarkChemistry,
// BenchmarkProjection, BenchmarkSimThroughput, BenchmarkServeReads,
// BenchmarkSchedulerQoS, BenchmarkSpeculativeSweep),
// parses the `go test -bench` output, and compares each ns/op against
// the latest row of the committed BENCH_*.json histories. A benchmark slower than baseline by
// more than the tolerance is a regression and the gate exits 1; a
// benchmark faster by more than the tolerance is reported as an
// improvement worth recording (append a row to the history — never
// overwrite it; see README "Benchmark baselines").
//
// Benchmarks whose measured iteration count is below -min-iters are
// reported but not judged: a single-iteration sample on a noisy host is
// not evidence of a regression. The gate prints the host CPU model and
// NumCPU, and warns (without failing) when the baseline row was recorded
// on a different CPU — cross-machine ns/op comparisons are advisory only.
//
//	perfgate [-tol 0.15] [-min-iters 1] [-benchtime 1s] [-dir .] [-only regexp]
//
// Exit codes: 0 pass, 1 regression (or gated benchmark missing from the
// bench output), 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchResult is one parsed `go test -bench` result line.
type benchResult struct {
	Name    string // benchmark path with the -GOMAXPROCS suffix stripped
	Iters   int
	NsPerOp float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// parseBench extracts the result lines from `go test -bench` output.
func parseBench(out string) []benchResult {
	var res []benchResult
	for _, ln := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(ln))
		if m == nil {
			continue
		}
		iters, err1 := strconv.Atoi(m[2])
		ns, err2 := strconv.ParseFloat(m[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		res = append(res, benchResult{Name: stripProcs(m[1]), Iters: iters, NsPerOp: ns})
	}
	return res
}

// stripProcs removes the trailing -N GOMAXPROCS suffix go test appends to
// every benchmark name.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gateSpec binds one committed BENCH_*.json history to the benchmarks it
// baselines.
type gateSpec struct {
	File   string                           // history file at the repo root
	Metric string                           // key of the ns/op map in a history row
	Pkg    string                           // package holding the benchmarks
	Bench  string                           // -bench regexp selecting them
	Key    func(name string) (string, bool) // parsed bench name -> metric map key
}

var gates = []gateSpec{
	{
		File: "BENCH_kernels.json", Metric: "ns_per_op", Pkg: ".",
		Bench: "^(BenchmarkScalingStep64|BenchmarkScalingMultigrid64|BenchmarkScalingGravityFFT64|BenchmarkChemistry)$",
		// The kernels history keys rows by the full benchmark path.
		Key: func(name string) (string, bool) { return name, true },
	},
	{
		File: "BENCH_projection.json", Metric: "ns_per_op", Pkg: ".",
		Bench: "^BenchmarkProjection$",
		Key: func(name string) (string, bool) {
			s, ok := strings.CutPrefix(name, "BenchmarkProjection/workers")
			if !ok {
				return "", false
			}
			return "workers=" + s, true
		},
	},
	{
		File: "BENCH_sim.json", Metric: "ns_per_job", Pkg: "./internal/sim",
		Bench: "^BenchmarkSimThroughput$",
		Key: func(name string) (string, bool) {
			return strings.CutPrefix(name, "BenchmarkSimThroughput/")
		},
	},
	{
		File: "BENCH_serve.json", Metric: "ns_per_op", Pkg: "./internal/sim",
		Bench: "^BenchmarkServeReads$",
		Key: func(name string) (string, bool) {
			return strings.CutPrefix(name, "BenchmarkServeReads/")
		},
	},
	{
		File: "BENCH_queue.json", Metric: "ns_per_op", Pkg: "./internal/sim",
		Bench: "^BenchmarkSchedulerQoS$",
		Key: func(name string) (string, bool) {
			return strings.CutPrefix(name, "BenchmarkSchedulerQoS/")
		},
	},
	{
		File: "BENCH_speculate.json", Metric: "ns_per_op", Pkg: "./internal/sim",
		Bench: "^BenchmarkSpeculativeSweep$",
		Key: func(name string) (string, bool) {
			return strings.CutPrefix(name, "BenchmarkSpeculativeSweep/")
		},
	},
}

// baseline is the latest row of one history file, reduced to what the gate
// needs.
type baseline struct {
	Date string
	CPU  string
	Ns   map[string]float64
}

// loadLatest reads a BENCH_*.json history and returns its newest row.
// Histories are append-only (rows are ordered oldest to newest), so the
// last element is the baseline.
func loadLatest(path, metric string) (baseline, error) {
	var bl baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return bl, err
	}
	var file struct {
		History []map[string]json.RawMessage `json:"history"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return bl, fmt.Errorf("%s: %w", path, err)
	}
	if len(file.History) == 0 {
		return bl, fmt.Errorf("%s: empty history", path)
	}
	row := file.History[len(file.History)-1]
	if v, ok := row["date"]; ok {
		_ = json.Unmarshal(v, &bl.Date)
	}
	if v, ok := row["cpu"]; ok {
		_ = json.Unmarshal(v, &bl.CPU)
	}
	v, ok := row[metric]
	if !ok {
		return bl, fmt.Errorf("%s: latest row has no %q map", path, metric)
	}
	if err := json.Unmarshal(v, &bl.Ns); err != nil {
		return bl, fmt.Errorf("%s: %s: %w", path, metric, err)
	}
	return bl, nil
}

// verdict is the judgement for one baselined benchmark.
type verdict struct {
	Key        string
	Base, Got  float64
	Iters      int
	Regression bool
	Improved   bool
	LowIters   bool
}

// compare judges every parsed result that maps into the baseline. Returns
// the verdicts plus the baseline keys no result matched (a renamed or
// deleted benchmark must not silently pass the gate).
func compare(results []benchResult, bl baseline, key func(string) (string, bool), tol float64, minIters int) ([]verdict, []string) {
	seen := map[string]bool{}
	var vs []verdict
	for _, r := range results {
		k, ok := key(r.Name)
		if !ok {
			continue
		}
		base, ok := bl.Ns[k]
		if !ok {
			continue // measured but not baselined (e.g. a NumCPU row the recording host lacked)
		}
		seen[k] = true
		v := verdict{Key: k, Base: base, Got: r.NsPerOp, Iters: r.Iters}
		switch {
		case r.Iters < minIters:
			v.LowIters = true
		case r.NsPerOp > base*(1+tol):
			v.Regression = true
		case r.NsPerOp < base*(1-tol):
			v.Improved = true
		}
		vs = append(vs, v)
	}
	var missing []string
	for k := range bl.Ns {
		if !seen[k] {
			missing = append(missing, k)
		}
	}
	return vs, missing
}

// cpuModel returns the host CPU model string (normalized whitespace), or
// the architecture when /proc/cpuinfo is unavailable.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, ln := range strings.Split(string(raw), "\n") {
			rest, ok := strings.CutPrefix(ln, "model name")
			if !ok {
				continue
			}
			if _, v, ok := strings.Cut(rest, ":"); ok {
				return strings.Join(strings.Fields(v), " ")
			}
		}
	}
	return runtime.GOARCH
}

// cpuMatches reports whether the baseline row's cpu annotation names the
// host CPU. Vendor decorations and spacing are ignored.
func cpuMatches(baselineCPU, hostModel string) bool {
	return strings.Contains(normalizeCPU(baselineCPU), normalizeCPU(hostModel))
}

func normalizeCPU(s string) string {
	s = strings.ToLower(s)
	for _, deco := range []string{"(r)", "(tm)", "(c)"} {
		s = strings.ReplaceAll(s, deco, "")
	}
	return strings.Join(strings.Fields(s), " ")
}

// runBenchCmd executes the benchmarks of one gate and returns the combined
// output. A variable so tests can substitute canned output.
var runBenchCmd = func(pkg, bench, benchtime, dir string) (string, error) {
	args := []string{"test", "-run", "^$", "-bench", bench}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0.15, "relative ns/op tolerance before a change is judged")
	minIters := fs.Int("min-iters", 1, "skip judging benchmarks measured with fewer iterations")
	benchtime := fs.String("benchtime", "", "go test -benchtime value (empty = go default)")
	dir := fs.String("dir", ".", "repo root holding the BENCH_*.json histories")
	only := fs.String("only", "", "regexp filtering which BENCH files to gate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	host := cpuModel()
	fmt.Fprintf(stdout, "perfgate: cpu=%q numcpu=%d %s tol=%.0f%%\n",
		host, runtime.NumCPU(), runtime.Version(), *tol*100)

	var filter *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(stderr, "perfgate: bad -only: %v\n", err)
			return 2
		}
		filter = re
	}

	failed := false
	for _, g := range gates {
		if filter != nil && !filter.MatchString(g.File) {
			continue
		}
		bl, err := loadLatest(filepath.Join(*dir, g.File), g.Metric)
		if err != nil {
			fmt.Fprintf(stderr, "perfgate: %v\n", err)
			return 2
		}
		if !cpuMatches(bl.CPU, host) {
			fmt.Fprintf(stdout, "%s: WARNING baseline recorded on %q, host is %q — ns/op comparison is advisory\n",
				g.File, bl.CPU, host)
		}
		fmt.Fprintf(stdout, "%s: baseline %s, running go test -bench %q %s\n", g.File, bl.Date, g.Bench, g.Pkg)
		out, err := runBenchCmd(g.Pkg, g.Bench, *benchtime, *dir)
		if err != nil {
			fmt.Fprintf(stderr, "perfgate: bench run failed: %v\n%s", err, out)
			return 2
		}
		verdicts, missing := compare(parseBench(out), bl, g.Key, *tol, *minIters)
		for _, v := range verdicts {
			delta := (v.Got/v.Base - 1) * 100
			switch {
			case v.LowIters:
				fmt.Fprintf(stdout, "  SKIP  %-45s %12.0f ns/op (%+.1f%%, %d iters < %d)\n",
					v.Key, v.Got, delta, v.Iters, *minIters)
			case v.Regression:
				failed = true
				fmt.Fprintf(stdout, "  FAIL  %-45s %12.0f ns/op vs %12.0f baseline (%+.1f%% > +%.0f%%)\n",
					v.Key, v.Got, v.Base, delta, *tol*100)
			case v.Improved:
				fmt.Fprintf(stdout, "  GOOD  %-45s %12.0f ns/op vs %12.0f baseline (%+.1f%% — append a new history row)\n",
					v.Key, v.Got, v.Base, delta)
			default:
				fmt.Fprintf(stdout, "  ok    %-45s %12.0f ns/op vs %12.0f baseline (%+.1f%%)\n",
					v.Key, v.Got, v.Base, delta)
			}
		}
		for _, k := range missing {
			failed = true
			fmt.Fprintf(stdout, "  FAIL  %-45s baselined but absent from bench output (renamed or deleted?)\n", k)
		}
	}
	if failed {
		fmt.Fprintln(stdout, "perfgate: FAIL")
		return 1
	}
	fmt.Fprintln(stdout, "perfgate: PASS")
	return 0
}
