package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOut = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScalingStep64/workers1-4         	       6	 190123456 ns/op	  920000 cells/s
BenchmarkScalingStep64/workers2-4         	      10	 101234567.5 ns/op
BenchmarkScalingMultigrid64/workers1-4    	      36	  31000000 ns/op
BenchmarkChemistry/workers1-4             	       1	1200000000 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	res := parseBench(sampleBenchOut)
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(res), res)
	}
	want := benchResult{Name: "BenchmarkScalingStep64/workers1", Iters: 6, NsPerOp: 190123456}
	if res[0] != want {
		t.Fatalf("first result %+v, want %+v", res[0], want)
	}
	if res[1].NsPerOp != 101234567.5 {
		t.Errorf("fractional ns/op lost: %+v", res[1])
	}
	if res[3].Iters != 1 {
		t.Errorf("iters wrong: %+v", res[3])
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkScalingStep64/workers1-4": "BenchmarkScalingStep64/workers1",
		"BenchmarkProjection-16":            "BenchmarkProjection",
		"BenchmarkNoSuffix":                 "BenchmarkNoSuffix",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	bl := baseline{Ns: map[string]float64{
		"BenchmarkScalingStep64/workers1":      200000000,  // measured -5%: ok
		"BenchmarkScalingStep64/workers2":      200000000,  // measured -49%: improved
		"BenchmarkScalingMultigrid64/workers1": 20000000,   // measured +55%: regression
		"BenchmarkChemistry/workers1":          1000000000, // 1 iter < floor: skipped
		"BenchmarkChemistry/workers2":          1000000000, // absent from output: missing
	}}
	ident := func(n string) (string, bool) { return n, true }
	vs, missing := compare(parseBench(sampleBenchOut), bl, ident, 0.15, 2)
	if len(vs) != 4 {
		t.Fatalf("verdict count %d, want 4: %+v", len(vs), vs)
	}
	byKey := map[string]verdict{}
	for _, v := range vs {
		byKey[v.Key] = v
	}
	if v := byKey["BenchmarkScalingStep64/workers1"]; v.Regression || v.Improved || v.LowIters {
		t.Errorf("within-tolerance run misjudged: %+v", v)
	}
	if !byKey["BenchmarkScalingStep64/workers2"].Improved {
		t.Errorf("large speedup not flagged as improvement: %+v", byKey["BenchmarkScalingStep64/workers2"])
	}
	if !byKey["BenchmarkScalingMultigrid64/workers1"].Regression {
		t.Errorf("slowdown not flagged: %+v", byKey["BenchmarkScalingMultigrid64/workers1"])
	}
	if !byKey["BenchmarkChemistry/workers1"].LowIters {
		t.Errorf("below min-iters sample judged anyway: %+v", byKey["BenchmarkChemistry/workers1"])
	}
	if len(missing) != 1 || missing[0] != "BenchmarkChemistry/workers2" {
		t.Errorf("missing = %v, want the absent workers2 row", missing)
	}
}

func TestCPUMatching(t *testing.T) {
	host := "Intel(R) Xeon(R) Processor @ 2.10GHz"
	if !cpuMatches("Intel Xeon Processor @ 2.10GHz (NumCPU=1)", host) {
		t.Error("decoration-stripped model should match")
	}
	if cpuMatches("AMD EPYC 7713", host) {
		t.Error("different CPU should not match")
	}
	if m := cpuModel(); m == "" {
		t.Error("cpuModel must return something")
	}
}

// writeHistory writes a minimal BENCH history with the given ns map.
func writeHistory(t *testing.T, dir, name, metric string, ns map[string]string) {
	t.Helper()
	var rows []string
	for k, v := range ns {
		rows = append(rows, `"`+k+`": `+v)
	}
	doc := `{"history": [{"date": "2026-01-01", "cpu": "Intel Xeon Processor @ 2.10GHz", "` +
		metric + `": {` + strings.Join(rows, ",") + `}}]}`
	if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGateFailsOnDoctoredBaseline is the acceptance check for the gate
// itself: against a baseline doctored to claim the kernels used to be much
// faster than the measured output, run() must exit nonzero.
func TestGateFailsOnDoctoredBaseline(t *testing.T) {
	dir := t.TempDir()
	// Baseline claims 10x faster kernels than the canned bench output.
	writeHistory(t, dir, "BENCH_kernels.json", "ns_per_op", map[string]string{
		"BenchmarkScalingStep64/workers1": "19000000",
	})
	old := runBenchCmd
	runBenchCmd = func(pkg, bench, benchtime, d string) (string, error) { return sampleBenchOut, nil }
	defer func() { runBenchCmd = old }()

	var out, errOut strings.Builder
	code := run([]string{"-dir", dir, "-only", "BENCH_kernels"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("doctored baseline: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report lacks FAIL line:\n%s", out.String())
	}
}

// TestGatePassesWithinTolerance: same harness with an honest baseline.
func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	writeHistory(t, dir, "BENCH_kernels.json", "ns_per_op", map[string]string{
		"BenchmarkScalingStep64/workers1": "190000000",
		"BenchmarkScalingStep64/workers2": "100000000",
	})
	old := runBenchCmd
	runBenchCmd = func(pkg, bench, benchtime, d string) (string, error) { return sampleBenchOut, nil }
	defer func() { runBenchCmd = old }()

	var out, errOut strings.Builder
	code := run([]string{"-dir", dir, "-only", "BENCH_kernels"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("honest baseline: exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("report lacks PASS line:\n%s", out.String())
	}
}

// TestGateWarnsOnCPUMismatch: a foreign baseline CPU warns but does not
// fail the gate.
func TestGateWarnsOnCPUMismatch(t *testing.T) {
	dir := t.TempDir()
	doc := `{"history": [{"date": "2026-01-01", "cpu": "AMD EPYC 7713",
		"ns_per_op": {"BenchmarkScalingStep64/workers1": 190000000}}]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_kernels.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	old := runBenchCmd
	runBenchCmd = func(pkg, bench, benchtime, d string) (string, error) { return sampleBenchOut, nil }
	defer func() { runBenchCmd = old }()

	var out, errOut strings.Builder
	code := run([]string{"-dir", dir, "-only", "BENCH_kernels"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("cpu mismatch must warn, not fail: exit %d\n%s\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Errorf("no CPU mismatch warning in:\n%s", out.String())
	}
}

func TestLoadLatestTakesNewestRow(t *testing.T) {
	dir := t.TempDir()
	doc := `{"history": [
		{"date": "2025-01-01", "cpu": "old host", "ns_per_op": {"k": 1}},
		{"date": "2026-01-01", "cpu": "new host", "ns_per_op": {"k": 2}}
	]}`
	path := filepath.Join(dir, "BENCH_kernels.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := loadLatest(path, "ns_per_op")
	if err != nil {
		t.Fatal(err)
	}
	if bl.Date != "2026-01-01" || bl.CPU != "new host" || bl.Ns["k"] != 2 {
		t.Fatalf("latest row not used: %+v", bl)
	}
}
