// Command enzobatch drives an N-job parameter sweep through the same
// scheduler that backs `enzogo serve`: every row of a sweep file becomes
// a sim job, the scheduler partitions the machine's par worker budget
// across the concurrent slots, identical rows coalesce onto one
// execution, and the results (hashes, timings, per-operator metrics) come
// back as a table plus an optional JSON report.
//
// A sweep file is JSON: an optional "defaults" request merged under every
// row, and the "jobs" rows themselves (fields as in sim.Request):
//
//	{
//	  "name": "sod solver matrix",
//	  "defaults": {"problem": "sod", "rootn": 16, "steps": 4},
//	  "jobs": [
//	    {"solver": "ppm"},
//	    {"solver": "fd"},
//	    {"solver": "ppm", "rootn": 32}
//	  ]
//	}
//
// Rows (or the defaults block) may declare derived data products with an
// "outputs" list — the same requests the HTTP API accepts — so a sweep
// collects projections, profiles or clump catalogs per job, not just
// hashes; -artifacts dumps every job's products under dir/<jobid>/. A
// row's non-empty list replaces the defaults' wholesale (an empty list
// cannot clear it — put product-free rows in a sweep without default
// outputs).
//
// With -data the sweep runs against a durable job store (the same
// layout `enzogo serve -data` uses): results persist across process
// restarts, so re-running a sweep — after a crash, an edit that adds
// rows, or on a store warmed by the service — answers already-completed
// rows as cache hits instead of recomputing them.
//
// Rows are submitted shortest-predicted-first: the store's cost model
// estimates each row's runtime from the history of similar jobs, so on
// a warm store the cheap rows finish (and print) before the expensive
// ones start. Rows without history keep their file order, and the
// table and JSON report always stay in file order.
//
// Usage:
//
//	enzobatch -f sweep.json -slots 4 -out results.json
//	enzobatch -f examples/sweeps/sedov_projections.json -artifacts products
//	enzobatch -f sweep.json -data /var/lib/enzogo   # re-runnable / warm-store
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// Sweep is the file format: defaults merged under every job row.
type Sweep struct {
	Name     string        `json:"name"`
	Defaults sim.Request   `json:"defaults"`
	Jobs     []sim.Request `json:"jobs"`
}

// Row pairs a sweep row with its outcome for the -out report.
type Row struct {
	Request sim.Request `json:"request"`
	Status  sim.Status  `json:"status"`
	Result  *sim.Result `json:"result,omitempty"`
	Error   string      `json:"error,omitempty"`
}

func main() {
	file := flag.String("f", "", "sweep file (JSON; required)")
	slots := flag.Int("slots", 2, "jobs evolving concurrently")
	workers := flag.Int("workers", 0, "total par worker budget partitioned across slots (0 = NumCPU)")
	out := flag.String("out", "", "write the full JSON report here")
	artifactDir := flag.String("artifacts", "", "write each job's derived-output artifacts under this directory")
	dataDir := flag.String("data", "", "durable job store directory: completed rows are cache hits on a re-run (share it with `enzogo serve -data`)")
	verbose := flag.Bool("v", false, "stream per-step progress lines")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	var sweep Sweep
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sweep); err != nil {
		log.Fatalf("%s: %v", *file, err)
	}
	if len(sweep.Jobs) == 0 {
		log.Fatalf("%s: sweep has no jobs", *file)
	}

	cfg := sim.Config{
		MaxConcurrent: *slots,
		TotalWorkers:  *workers,
		// Retain every row: a sweep is exactly the workload where late
		// duplicates should hit earlier results.
		CacheSize:  2 * len(sweep.Jobs),
		QueueDepth: len(sweep.Jobs) + 1,
	}
	if *dataDir != "" {
		store, err := diskstore.New(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
		// Cache eviction is the store's retention policy: evicted jobs
		// are deleted from disk. A sweep-sized cache against a shared
		// serve store would wipe every prior result the moment recovery
		// overflows it, so a warm sweep never evicts — retention belongs
		// to the long-lived serve instance.
		cfg.CacheSize = 1 << 30
	}
	sched := sim.NewScheduler(cfg)
	defer sched.Close()
	if recovered, _, err := sched.RecoverState(); err != nil {
		log.Printf("warm store recovery: %v", err)
	} else if recovered > 0 {
		fmt.Printf("warm store %s: %d completed jobs recovered (matching rows will be cache hits)\n",
			*dataDir, recovered)
	}

	name := sweep.Name
	if name == "" {
		name = *file
	}
	fmt.Printf("sweep %q: %d jobs on %d slots × %d workers\n",
		name, len(sweep.Jobs), *slots, sched.SlotWorkers())

	rows := make([]Row, len(sweep.Jobs))
	jobs := make([]*sim.Job, len(sweep.Jobs))
	reqs := make([]sim.Request, len(sweep.Jobs))
	costs := make([]float64, len(sweep.Jobs))
	order := make([]int, len(sweep.Jobs))
	for i, over := range sweep.Jobs {
		req := sim.Merge(sweep.Defaults, over)
		reqs[i], rows[i].Request = req, req
		order[i] = i
		// Shortest-predicted-first submission: against a warm store the
		// cost model has history for repeated shapes, and running cheap
		// rows first minimizes mean wait. Rows it knows nothing about
		// charge the queue's default (1s), so an all-cold sweep keeps
		// file order — the sort is stable and reporting stays in file
		// order regardless.
		costs[i] = 1
		if est, err := sched.Estimate(req); err == nil && est.Samples > 0 && est.Seconds > 0 {
			costs[i] = est.Seconds
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
	for _, i := range order {
		j, err := sched.Submit(reqs[i])
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		jobs[i] = j
		if *verbose {
			go func(i int, j *sim.Job) {
				for p := range j.Watch() {
					fmt.Printf("  [%d %s] step %d t=%.5f dt=%.2e grids=%d\n",
						i, j.ID, p.Step, p.Time, p.Dt, p.NumGrids)
				}
			}(i, j)
		}
	}

	failed := 0
	fmt.Printf("%-3s %-16s %-10s %-9s %5s %10s %16s %5s %8s %8s\n",
		"#", "id", "problem", "state", "steps", "t", "hash", "arts", "wall[s]", "est[s]")
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		st := j.Status()
		rows[i].Status = st
		// The submit-time prediction rides on the status (and the JSON
		// report); "-" marks a row the model had no history for.
		est := "-"
		if st.Estimate != nil && st.Estimate.Samples > 0 {
			est = fmt.Sprintf("%.2f", st.Estimate.Seconds)
		}
		if err != nil {
			rows[i].Error = err.Error()
			failed++
			fmt.Printf("%-3d %-16s %-10s %-9s %s\n", i, j.ID, st.Problem, st.State, err)
			continue
		}
		rows[i].Result = res
		fmt.Printf("%-3d %-16s %-10s %-9s %5d %10.5f %16s %5d %8.2f %8s\n",
			i, j.ID, st.Problem, st.State, res.Steps, res.Time, res.Hash,
			res.Artifacts, res.Metrics.WallSeconds, est)
		if *artifactDir != "" {
			if err := dumpArtifacts(*artifactDir, j); err != nil {
				log.Fatal(err)
			}
		}
	}

	stats := sched.Stats()
	fmt.Printf("\n%d jobs: %d executed, %d coalesced, %d cache hits, %d failed\n",
		stats.Submitted, stats.Executed, stats.Coalesced, stats.CacheHits, failed)
	printKnobSummary(rows)

	if *out != "" {
		report, err := json.MarshalIndent(map[string]any{
			"sweep": name,
			"stats": stats,
			"rows":  rows,
		}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(report, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpArtifacts writes one completed job's retained data products under
// dir/<jobid>/, named as the artifact store names them. Duplicate rows
// coalesce onto one job ID, so they rewrite the same files with the same
// bytes.
func dumpArtifacts(dir string, j *sim.Job) error {
	arts := j.Artifacts().All()
	if len(arts) == 0 {
		return nil
	}
	jobDir := filepath.Join(dir, j.ID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return err
	}
	for _, a := range arts {
		if err := os.WriteFile(filepath.Join(jobDir, a.Name), a.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("    %d artifacts -> %s\n", len(arts), jobDir)
	return nil
}

// printKnobSummary groups completed rows by problem and shows which
// settings produced which hash — the at-a-glance view of a scan (two
// rows with the same label but different hashes should not happen, and
// identical hashes under different labels flag a knob with no effect).
func printKnobSummary(rows []Row) {
	type line struct{ knobs, hash string }
	byProblem := map[string][]line{}
	for _, r := range rows {
		if r.Result == nil {
			continue
		}
		byProblem[r.Request.Problem] = append(byProblem[r.Request.Problem], line{
			knobs: rowLabel(r.Request),
			hash:  r.Result.Hash,
		})
	}
	names := make([]string, 0, len(byProblem))
	for n := range byProblem {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s:\n", n)
		for _, l := range byProblem[n] {
			fmt.Printf("  %-40s -> %s\n", l.knobs, l.hash)
		}
	}
}

// rowLabel renders every request field that distinguishes sweep rows of
// one problem: the knobs plus any explicit grid/solver/step overrides.
func rowLabel(req sim.Request) string {
	label := problems.CanonicalKnobs(req.Knobs)
	if req.Solver != "" {
		label += " solver=" + req.Solver
	}
	if req.RootN != 0 {
		label += fmt.Sprintf(" rootn=%d", req.RootN)
	}
	if req.MaxLevel != nil {
		label += fmt.Sprintf(" maxlevel=%d", *req.MaxLevel)
	}
	if req.Steps != 0 {
		label += fmt.Sprintf(" steps=%d", req.Steps)
	}
	if req.Seed != nil {
		label += fmt.Sprintf(" seed=%d", *req.Seed)
	}
	if req.Chemistry != nil {
		label += fmt.Sprintf(" chem=%t", *req.Chemistry)
	}
	if req.Workers != 0 {
		label += fmt.Sprintf(" workers=%d", req.Workers)
	}
	if req.MaxTime != 0 {
		label += fmt.Sprintf(" maxtime=%g", req.MaxTime)
	}
	if len(req.Outputs) > 0 {
		label += fmt.Sprintf(" outputs=%d", len(req.Outputs))
	}
	return label
}
