// Command enzobatch drives an N-job parameter sweep through the same
// scheduler that backs `enzogo serve`: every row of a sweep file becomes
// a sim job, the scheduler partitions the machine's par worker budget
// across the concurrent slots, identical rows coalesce onto one
// execution, and the results (hashes, timings, per-operator metrics) come
// back as a table plus an optional JSON report.
//
// A sweep file is JSON: an optional "defaults" request merged under every
// row, and the "jobs" rows themselves (fields as in sim.Request):
//
//	{
//	  "name": "sod solver matrix",
//	  "defaults": {"problem": "sod", "rootn": 16, "steps": 4},
//	  "jobs": [
//	    {"solver": "ppm"},
//	    {"solver": "fd"},
//	    {"solver": "ppm", "rootn": 32}
//	  ]
//	}
//
// Rows (or the defaults block) may declare derived data products with an
// "outputs" list — the same requests the HTTP API accepts — so a sweep
// collects projections, profiles or clump catalogs per job, not just
// hashes; -artifacts dumps every job's products under dir/<jobid>/. A
// row's non-empty list replaces the defaults' wholesale (an empty list
// cannot clear it — put product-free rows in a sweep without default
// outputs).
//
// With -data the sweep runs against a durable job store (the same
// layout `enzogo serve -data` uses): results persist across process
// restarts, so re-running a sweep — after a crash, an edit that adds
// rows, or on a store warmed by the service — answers already-completed
// rows as cache hits instead of recomputing them.
//
// With -server the sweep runs against a live `enzogo serve` instance
// over HTTP instead of an in-process scheduler. The full resolved row
// list is announced up front (POST /sweeps), so a `-speculate` server
// can pre-warm later rows on idle slots while the client trickles
// submissions in -stagger apart; rows the planner finished early come
// back as instant cache hits. The table's disp column shows how each
// row was answered — run (a fresh execution), coalesced, or cache — and
// the summary counts the cache hits that were pre-warmed speculatively.
//
// Rows are submitted shortest-predicted-first: the cost model (local
// store's, or the server's via the sweep announcement) estimates each
// row's runtime from the history of similar jobs, so on a warm store
// the cheap rows finish before the expensive ones start. Rows without
// history keep their file order — the sort is stable — and the table
// and JSON report always stay in file order.
//
// Usage:
//
//	enzobatch -f sweep.json -slots 4 -out results.json
//	enzobatch -f examples/sweeps/sedov_projections.json -artifacts products
//	enzobatch -f sweep.json -data /var/lib/enzogo   # re-runnable / warm-store
//	enzobatch -f sweep.json -server http://localhost:8080 -stagger 2s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/sim/diskstore"
)

// Sweep is the file format: defaults merged under every job row.
type Sweep struct {
	Name     string        `json:"name"`
	Defaults sim.Request   `json:"defaults"`
	Jobs     []sim.Request `json:"jobs"`
}

// Row pairs a sweep row with its outcome for the -out report.
type Row struct {
	Request sim.Request `json:"request"`
	// Disposition is how the scheduler answered the submission:
	// "scheduled" (a fresh execution), "coalesced" or "cache".
	Disposition string      `json:"disposition,omitempty"`
	Status      sim.Status  `json:"status"`
	Result      *sim.Result `json:"result,omitempty"`
	Error       string      `json:"error,omitempty"`
}

func main() {
	file := flag.String("f", "", "sweep file (JSON; required)")
	slots := flag.Int("slots", 2, "jobs evolving concurrently")
	workers := flag.Int("workers", 0, "total par worker budget partitioned across slots (0 = NumCPU)")
	out := flag.String("out", "", "write the full JSON report here")
	artifactDir := flag.String("artifacts", "", "write each job's derived-output artifacts under this directory")
	dataDir := flag.String("data", "", "durable job store directory: completed rows are cache hits on a re-run (share it with `enzogo serve -data`)")
	server := flag.String("server", "", "run the sweep against this `enzogo serve` base URL over HTTP (announces the rows via POST /sweeps first)")
	stagger := flag.Duration("stagger", 0, "with -server: pause this long between row submissions (the idle windows a -speculate server pre-warms in)")
	verbose := flag.Bool("v", false, "stream per-step progress lines (in-process mode only)")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	var sweep Sweep
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sweep); err != nil {
		log.Fatalf("%s: %v", *file, err)
	}
	if len(sweep.Jobs) == 0 {
		log.Fatalf("%s: sweep has no jobs", *file)
	}

	name := sweep.Name
	if name == "" {
		name = *file
	}
	rows := make([]Row, len(sweep.Jobs))
	reqs := make([]sim.Request, len(sweep.Jobs))
	for i, over := range sweep.Jobs {
		req := sim.Merge(sweep.Defaults, over)
		reqs[i], rows[i].Request = req, req
	}

	var failed int
	var stats *sim.Stats
	if *server != "" {
		if *dataDir != "" {
			log.Fatal("enzobatch: -data and -server are mutually exclusive (the server owns its store)")
		}
		if *verbose {
			fmt.Println("(-v progress streams are not available with -server)")
		}
		failed = runRemote(*server, name, sweep, reqs, rows, *stagger, *artifactDir)
	} else {
		failed, stats = runLocal(name, sweep, reqs, rows, *slots, *workers, *dataDir, *artifactDir, *verbose)
	}

	// The summary is row-based in both modes: dispositions say how the
	// scheduler answered each submission, and a cache hit on a
	// speculative job is a row the planner pre-warmed before we asked.
	executed, coalesced, cached, prewarmed := 0, 0, 0, 0
	for i := range rows {
		switch rows[i].Disposition {
		case string(sim.Scheduled):
			executed++
		case string(sim.Coalesced):
			coalesced++
		case string(sim.CacheHit):
			cached++
			if rows[i].Status.Speculative {
				prewarmed++
			}
		}
	}
	fmt.Printf("\n%d rows: %d executed, %d coalesced, %d cache hits (%d pre-warmed speculatively), %d failed\n",
		len(rows), executed, coalesced, cached, prewarmed, failed)
	printKnobSummary(rows)

	if *out != "" {
		doc := map[string]any{"sweep": name, "rows": rows}
		if stats != nil {
			doc["stats"] = *stats
		}
		report, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(report, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// tableHeader prints the result table's column line.
func tableHeader() {
	fmt.Printf("%-3s %-16s %-10s %-9s %-9s %5s %10s %16s %5s %8s %8s\n",
		"#", "id", "problem", "state", "disp", "steps", "t", "hash", "arts", "wall[s]", "est[s]")
}

// printRow renders one finished row's table line.
func printRow(i int, r Row) {
	disp := r.Disposition
	switch disp {
	case string(sim.Scheduled):
		disp = "run"
	case "":
		disp = "-"
	}
	// The submit-time prediction rides on the status (and the JSON
	// report); "-" marks a row the model had no history for.
	est := "-"
	if r.Status.Estimate != nil && r.Status.Estimate.Samples > 0 {
		est = fmt.Sprintf("%.2f", r.Status.Estimate.Seconds)
	}
	if r.Result == nil {
		fmt.Printf("%-3d %-16s %-10s %-9s %-9s %s\n",
			i, r.Status.ID, r.Status.Problem, r.Status.State, disp, r.Error)
		return
	}
	fmt.Printf("%-3d %-16s %-10s %-9s %-9s %5d %10.5f %16s %5d %8.2f %8s\n",
		i, r.Status.ID, r.Status.Problem, r.Status.State, disp, r.Result.Steps, r.Result.Time,
		r.Result.Hash, r.Result.Artifacts, r.Result.Metrics.WallSeconds, est)
}

// runLocal drives the sweep through an in-process scheduler (optionally
// against a durable -data store) and fills rows in place.
func runLocal(name string, sweep Sweep, reqs []sim.Request, rows []Row, slots, workers int, dataDir, artifactDir string, verbose bool) (int, *sim.Stats) {
	cfg := sim.Config{
		MaxConcurrent: slots,
		TotalWorkers:  workers,
		// Retain every row: a sweep is exactly the workload where late
		// duplicates should hit earlier results.
		CacheSize:  2 * len(sweep.Jobs),
		QueueDepth: len(sweep.Jobs) + 1,
	}
	if dataDir != "" {
		store, err := diskstore.New(dataDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
		// Cache eviction is the store's retention policy: evicted jobs
		// are deleted from disk. A sweep-sized cache against a shared
		// serve store would wipe every prior result the moment recovery
		// overflows it, so a warm sweep never evicts — retention belongs
		// to the long-lived serve instance.
		cfg.CacheSize = 1 << 30
	}
	sched := sim.NewScheduler(cfg)
	defer sched.Close()
	if recovered, _, err := sched.RecoverState(); err != nil {
		log.Printf("warm store recovery: %v", err)
	} else if recovered > 0 {
		fmt.Printf("warm store %s: %d completed jobs recovered (matching rows will be cache hits)\n",
			dataDir, recovered)
	}

	fmt.Printf("sweep %q: %d jobs on %d slots × %d workers\n",
		name, len(sweep.Jobs), slots, sched.SlotWorkers())

	jobs := make([]*sim.Job, len(sweep.Jobs))
	costs := make([]float64, len(sweep.Jobs))
	order := make([]int, len(sweep.Jobs))
	for i, req := range reqs {
		order[i] = i
		// Shortest-predicted-first submission: against a warm store the
		// cost model has history for repeated shapes, and running cheap
		// rows first minimizes mean wait. Rows it knows nothing about
		// charge the queue's default (1s), so an all-cold sweep keeps
		// file order — the sort is stable and reporting stays in file
		// order regardless.
		costs[i] = 1
		if est, err := sched.Estimate(req); err == nil && est.Samples > 0 && est.Seconds > 0 {
			costs[i] = est.Seconds
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })
	for _, i := range order {
		j, disp, err := sched.SubmitWithDisposition(reqs[i])
		if err != nil {
			log.Fatalf("job %d: %v", i, err)
		}
		jobs[i] = j
		rows[i].Disposition = string(disp)
		if verbose {
			go func(i int, j *sim.Job) {
				for p := range j.Watch() {
					fmt.Printf("  [%d %s] step %d t=%.5f dt=%.2e grids=%d\n",
						i, j.ID, p.Step, p.Time, p.Dt, p.NumGrids)
				}
			}(i, j)
		}
	}

	failed := 0
	tableHeader()
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		rows[i].Status = j.Status()
		if err != nil {
			rows[i].Error = err.Error()
			failed++
		} else {
			rows[i].Result = res
		}
		printRow(i, rows[i])
		if err == nil && artifactDir != "" {
			if err := dumpArtifacts(artifactDir, j); err != nil {
				log.Fatal(err)
			}
		}
	}
	stats := sched.Stats()
	return failed, &stats
}

// remote is a minimal client for the `enzogo serve` HTTP API.
type remote struct {
	base string
	hc   *http.Client
}

func (c *remote) url(path string) string { return strings.TrimRight(c.base, "/") + path }

// postJSON posts body as JSON and decodes the response into out (when
// non-nil); a >=400 status becomes an error carrying the body.
func (c *remote) postJSON(path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.url(path), "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	return decodeResponse(path, resp, out)
}

// getJSON fetches path and decodes the JSON response into out.
func (c *remote) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.url(path))
	if err != nil {
		return err
	}
	return decodeResponse(path, resp, out)
}

// getBytes fetches path and returns the raw response body.
func (c *remote) getBytes(path string) ([]byte, error) {
	resp, err := c.hc.Get(c.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// decodeResponse drains resp, turning >=400 statuses into errors and
// unmarshalling success bodies into out when non-nil.
func decodeResponse(path string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// runRemote drives the sweep against a live service: announce the full
// row list (POST /sweeps) so a -speculate server can pre-warm rows on
// idle slots, then submit shortest-predicted-first with -stagger
// between rows — the idle windows a trickling client naturally leaves.
// The table prints in file order once every row has finished.
func runRemote(base, name string, sweep Sweep, reqs []sim.Request, rows []Row, stagger time.Duration, artifactDir string) int {
	c := &remote{base: base, hc: &http.Client{Timeout: 10 * time.Minute}}
	fmt.Printf("sweep %q: %d jobs against %s\n", name, len(reqs), base)

	costs := make([]float64, len(reqs))
	order := make([]int, len(reqs))
	for i := range reqs {
		costs[i], order[i] = 1, i
	}
	var announce sim.SweepResponse
	if err := c.postJSON("/sweeps", sim.SweepManifest{Name: name, Defaults: sweep.Defaults, Jobs: sweep.Jobs}, &announce); err != nil {
		// An older server without /sweeps still runs the sweep — just
		// without pre-warming or server-side estimates.
		log.Printf("sweep announce: %v (continuing without pre-warm)", err)
	} else {
		fmt.Printf("announced %d rows: %d accepted for pre-warm (speculate=%t)\n",
			announce.Rows, announce.Accepted, announce.Speculate)
		for _, r := range announce.Results {
			if r.Index >= 0 && r.Index < len(costs) && r.Estimate != nil && r.Estimate.Samples > 0 && r.Estimate.Seconds > 0 {
				costs[r.Index] = r.Estimate.Seconds
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] < costs[order[b]] })

	failed := 0
	for k, i := range order {
		if k > 0 && stagger > 0 {
			time.Sleep(stagger)
		}
		var sub sim.SubmitResponse
		if err := c.postJSON("/jobs", reqs[i], &sub); err != nil {
			rows[i].Error = err.Error()
			failed++
			continue
		}
		rows[i].Disposition = sub.Disposition
		st := sub.Status
		for st.State == "queued" || st.State == "running" {
			time.Sleep(100 * time.Millisecond)
			if err := c.getJSON("/jobs/"+st.ID, &st); err != nil {
				rows[i].Error = err.Error()
				break
			}
		}
		rows[i].Status = st
		switch {
		case rows[i].Error != "":
			failed++
		case st.State == "done":
			var res sim.Result
			if err := c.getJSON("/jobs/"+st.ID+"/result", &res); err != nil {
				rows[i].Error = err.Error()
				failed++
				continue
			}
			rows[i].Result = &res
			if artifactDir != "" {
				if err := fetchArtifacts(c, artifactDir, st.ID); err != nil {
					log.Fatal(err)
				}
			}
		default:
			rows[i].Error = st.Error
			failed++
		}
	}

	tableHeader()
	for i := range rows {
		printRow(i, rows[i])
	}
	return failed
}

// fetchArtifacts mirrors dumpArtifacts over HTTP: the artifact index
// plus each payload, written under dir/<jobid>/.
func fetchArtifacts(c *remote, dir, id string) error {
	var index []sim.ArtifactMeta
	if err := c.getJSON("/jobs/"+id+"/artifacts", &index); err != nil {
		return err
	}
	if len(index) == 0 {
		return nil
	}
	jobDir := filepath.Join(dir, id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return err
	}
	for _, a := range index {
		data, err := c.getBytes("/jobs/" + id + "/artifacts/" + a.Name)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(jobDir, a.Name), data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("    %d artifacts -> %s\n", len(index), jobDir)
	return nil
}

// dumpArtifacts writes one completed job's retained data products under
// dir/<jobid>/, named as the artifact store names them. Duplicate rows
// coalesce onto one job ID, so they rewrite the same files with the same
// bytes.
func dumpArtifacts(dir string, j *sim.Job) error {
	arts := j.Artifacts().All()
	if len(arts) == 0 {
		return nil
	}
	jobDir := filepath.Join(dir, j.ID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return err
	}
	for _, a := range arts {
		if err := os.WriteFile(filepath.Join(jobDir, a.Name), a.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("    %d artifacts -> %s\n", len(arts), jobDir)
	return nil
}

// printKnobSummary groups completed rows by problem and shows which
// settings produced which hash — the at-a-glance view of a scan (two
// rows with the same label but different hashes should not happen, and
// identical hashes under different labels flag a knob with no effect).
func printKnobSummary(rows []Row) {
	type line struct{ knobs, hash string }
	byProblem := map[string][]line{}
	for _, r := range rows {
		if r.Result == nil {
			continue
		}
		byProblem[r.Request.Problem] = append(byProblem[r.Request.Problem], line{
			knobs: rowLabel(r.Request),
			hash:  r.Result.Hash,
		})
	}
	names := make([]string, 0, len(byProblem))
	for n := range byProblem {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s:\n", n)
		for _, l := range byProblem[n] {
			fmt.Printf("  %-40s -> %s\n", l.knobs, l.hash)
		}
	}
}

// rowLabel renders every request field that distinguishes sweep rows of
// one problem: the knobs plus any explicit grid/solver/step overrides.
func rowLabel(req sim.Request) string {
	label := problems.CanonicalKnobs(req.Knobs)
	if req.Solver != "" {
		label += " solver=" + req.Solver
	}
	if req.RootN != 0 {
		label += fmt.Sprintf(" rootn=%d", req.RootN)
	}
	if req.MaxLevel != nil {
		label += fmt.Sprintf(" maxlevel=%d", *req.MaxLevel)
	}
	if req.Steps != 0 {
		label += fmt.Sprintf(" steps=%d", req.Steps)
	}
	if req.Seed != nil {
		label += fmt.Sprintf(" seed=%d", *req.Seed)
	}
	if req.Chemistry != nil {
		label += fmt.Sprintf(" chem=%t", *req.Chemistry)
	}
	if req.Workers != 0 {
		label += fmt.Sprintf(" workers=%d", req.Workers)
	}
	if req.MaxTime != 0 {
		label += fmt.Sprintf(" maxtime=%g", req.MaxTime)
	}
	if len(req.Outputs) > 0 {
		label += fmt.Sprintf(" outputs=%d", len(req.Outputs))
	}
	return label
}
