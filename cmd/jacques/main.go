// Command jacques is the CLI stand-in for the paper's IDL visualization
// tool (§6): it renders density slices of a run, zooming by a configurable
// factor per frame about the densest point — the "zoom in by 10^10
// button" reduced to a flag.
//
//	jacques -problem collapse -steps 20 -frames 4 -factor 10 -out frames
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/problems"
)

func main() {
	problem := flag.String("problem", "collapse", "registered problem name (see enzogo -list)")
	steps := flag.Int("steps", 12, "root steps to run before rendering")
	frames := flag.Int("frames", 4, "number of zoom frames")
	factor := flag.Float64("factor", 10, "zoom factor per frame (paper Fig 3: 10)")
	res := flag.Int("res", 128, "pixels per side")
	outDir := flag.String("out", "frames", "output directory for PGM images")
	flag.Parse()

	sim, err := core.New(*problem, func(o *problems.Opts) {
		switch *problem {
		case "collapse":
			o.MaxLevel = 4
		case "sedov":
			o.RootN, o.MaxLevel = 32, 2
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.RunSteps(*steps)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	imgs := sim.ZoomFrames(*frames, *factor, *res)
	for i, img := range imgs {
		path := filepath.Join(*outDir, fmt.Sprintf("zoom_%02d.pgm", i))
		if err := analysis.SavePGM(path, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d (zoom %gx): %s\n", i, pow(*factor, i), path)
	}
}

func pow(f float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= f
	}
	return out
}
