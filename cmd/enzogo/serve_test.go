package main

// The graceful-drain acceptance test for `enzogo serve -data`: SIGTERM
// with a job running must checkpoint it, exit cleanly, and a restarted
// server must resume it to the same bitwise answer an uninterrupted run
// produces. This drives the real binary with real signals — the process
// lifecycle is exactly what the test is about.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/sim"
)

// buildEnzogo compiles the binary under test into dir.
func buildEnzogo(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "enzogo")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// server to claim (a benign race no other allocator on this host is
// competing in during tests).
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startServe launches `enzogo serve` and waits for /healthz.
func startServe(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"serve"}, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

func getStatus(t *testing.T, base, id string) sim.Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sim.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestServeGracefulDrainSIGTERM(t *testing.T) {
	tmp := t.TempDir()
	bin := buildEnzogo(t, tmp)
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr(t)
	base := "http://" + addr

	cmd := startServe(t, bin, "-addr", addr, "-data", dataDir, "-slots", "1", "-workers", "1", "-checkpoint-every", "2")
	defer cmd.Process.Kill()
	waitHealthy(t, base)

	body := `{"problem":"sedov","rootn":16,"maxlevel":1,"steps":24,"workers":1,"knobs":{"e0":20}}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub sim.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("no job id")
	}

	// SIGTERM once the job is demonstrably mid-run.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached a running, pre-completion state")
		}
		st := getStatus(t, base, sub.ID)
		if st.State == "running" && st.Progress.Step >= 1 {
			break
		}
		if st.State == "done" {
			t.Fatal("job finished before SIGTERM; enlarge the request")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("serve did not exit clean on SIGTERM: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve hung on SIGTERM")
	}

	// The drain must have left a checkpoint and an interrupted (not
	// terminal) record on disk.
	ckptDir := filepath.Join(dataDir, "jobs", sub.ID, "checkpoints")
	entries, err := os.ReadDir(ckptDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint on disk after drain: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(dataDir, "jobs", sub.ID, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m sim.JobManifest
	if err := json.Unmarshal(manifest, &m); err != nil {
		t.Fatal(err)
	}
	if m.State != sim.ManifestInterrupted {
		t.Fatalf("manifest state %q after drain, want %q", m.State, sim.ManifestInterrupted)
	}

	// Restart: the job resumes from the drain checkpoint and completes.
	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	cmd2 := startServe(t, bin, "-addr", addr2, "-data", dataDir, "-slots", "1", "-workers", "1", "-checkpoint-every", "2")
	defer cmd2.Process.Kill()
	waitHealthy(t, base2)

	var final sim.Status
	deadline = time.Now().Add(300 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished: %+v", final)
		}
		final = getStatus(t, base2, sub.ID)
		if final.State == "done" {
			break
		}
		if final.State == "failed" || final.State == "cancelled" {
			t.Fatalf("resumed job %s: %+v", final.State, final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !final.Recovered || !strings.HasPrefix(final.ResumedFrom, "checkpoint step ") {
		t.Fatalf("no resume provenance on restarted job: %+v", final)
	}

	// Bitwise identity against an uninterrupted in-process run of the
	// same canonical request.
	ref := sim.NewScheduler(sim.Config{MaxConcurrent: 1, TotalWorkers: 1})
	defer ref.Close()
	var req sim.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	rj, err := ref.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	refRes, err := rj.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rj.ID != sub.ID {
		t.Fatalf("canonical identity differs: served %s, in-process %s", sub.ID, rj.ID)
	}
	if final.Hash != refRes.Hash {
		t.Fatalf("drained+resumed hash %s, uninterrupted %s", final.Hash, refRes.Hash)
	}

	// And the second server shuts down clean too.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited2 := make(chan error, 1)
	go func() { exited2 <- cmd2.Wait() }()
	select {
	case err := <-exited2:
		if err != nil {
			t.Fatalf("second serve did not exit clean: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("second serve hung on SIGTERM")
	}
}
