package main

// The speculative-warming acceptance test: a real `enzogo serve
// -speculate` process, a real `enzobatch -server -stagger` client. The
// batch client announces the sweep up front and trickles submissions
// in; the server's idle slot must pre-warm the later rows so they come
// back as cache hits flagged speculative — visible in the enzobatch
// table, its summary line, and the server's /metrics.

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one of the repo's commands into dir.
func buildTool(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestSpeculativeSweepOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-binary E2E; skipped under -short")
	}
	tmp := t.TempDir()
	serveBin := buildTool(t, tmp, "enzogo", ".")
	batchBin := buildTool(t, tmp, "enzobatch", "repro/cmd/enzobatch")

	addr := freeAddr(t)
	base := "http://" + addr
	cmd := startServe(t, serveBin, "-addr", addr, "-slots", "1", "-workers", "1", "-speculate")
	defer cmd.Process.Kill()
	waitHealthy(t, base)

	// Four cheap rows along one knob axis. The client staggers its
	// submissions, so while it sleeps the idle slot runs ahead through
	// the announced backlog.
	sweepPath := filepath.Join(tmp, "sweep.json")
	sweep := `{
  "name": "warmsweep",
  "defaults": {"problem": "sedov", "rootn": 8, "maxlevel": 0, "steps": 2, "workers": 1},
  "jobs": [
    {"knobs": {"e0": 4}},
    {"knobs": {"e0": 5}},
    {"knobs": {"e0": 6}},
    {"knobs": {"e0": 7}}
  ]
}
`
	if err := os.WriteFile(sweepPath, []byte(sweep), 0o644); err != nil {
		t.Fatal(err)
	}

	batch := exec.Command(batchBin, "-f", sweepPath, "-server", base, "-stagger", "2s")
	out, err := batch.CombinedOutput()
	if err != nil {
		t.Fatalf("enzobatch: %v\n%s", err, out)
	}
	output := string(out)

	// The sweep was announced and rows accepted for pre-warming.
	if !strings.Contains(output, "accepted for pre-warm (speculate=true)") {
		t.Fatalf("no pre-warm announcement in output:\n%s", output)
	}
	// The summary counts speculative pre-warm hits. The first row races
	// the planner so its disposition is host-dependent, but with a 2s
	// stagger per row the later rows must already be warm.
	var rows, executed, coalesced, cached, prewarmed, failed int
	summary := ""
	for _, line := range strings.Split(output, "\n") {
		if strings.Contains(line, "pre-warmed speculatively") {
			summary = line
			break
		}
	}
	if summary == "" {
		t.Fatalf("no summary line in output:\n%s", output)
	}
	if _, err := fmt.Sscanf(summary, "%d rows: %d executed, %d coalesced, %d cache hits (%d pre-warmed speculatively), %d failed",
		&rows, &executed, &coalesced, &cached, &prewarmed, &failed); err != nil {
		t.Fatalf("unparseable summary %q: %v", summary, err)
	}
	if failed != 0 || rows != 4 {
		t.Fatalf("sweep failed: %s\n%s", summary, output)
	}
	if prewarmed < 2 {
		t.Fatalf("only %d rows pre-warmed speculatively, want >= 2:\n%s", prewarmed, output)
	}
	// The pre-warmed rows show in the table as cache dispositions.
	if n := strings.Count(output, " cache "); n < prewarmed {
		t.Fatalf("%d cache rows in the table, summary claims %d pre-warmed:\n%s", n, prewarmed, output)
	}

	// The server's counters agree.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "sim_speculative_hits_total ") {
			fmt.Sscanf(line, "sim_speculative_hits_total %d", &hits)
		}
	}
	if hits < prewarmed {
		t.Fatalf("sim_speculative_hits_total %d < %d pre-warmed rows reported by enzobatch", hits, prewarmed)
	}

	// Clean shutdown.
	cmd.Process.Signal(os.Interrupt)
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("serve did not exit clean: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve hung on SIGINT")
	}
}
