// Command enzogo runs one of the registered problems and reports the
// hierarchy statistics, component-usage table and performance summary —
// the reproduction's equivalent of the paper's production driver.
//
// Problems are resolved dynamically from the problem registry
// (internal/problems): any scenario registered with problems.Register is
// runnable by name, and -list prints the catalog. Unset flags fall back
// to the problem's own defaults.
//
// Usage:
//
//	enzogo -list
//	enzogo -problem collapse -steps 40 -rootn 16 -maxlevel 5
//	enzogo -problem sedov -steps 20 -p e0=50
//	enzogo -problem khi -steps 30 -rootn 32
//	enzogo -problem zoom -steps 10 -save run.gob.gz
//	enzogo -restart run.gob.gz -steps 10
//
// Derived data products (slices, projections, radial profiles, clump
// catalogs, snapshots) are collected in flight with repeated -output
// specs — the same declarative requests the job service accepts — and
// written to -outdir as the run crosses each cadence boundary:
//
//	enzogo -problem sedov -steps 20 \
//	    -output projection,field=rho,axis=2,n=128,every=5 \
//	    -output slice,field=temp,format=png -outdir products
//
// A `-output checkpoint,every=N` spec writes periodic restart files
// (loadable with -restart) alongside the science products — the offline
// flavor of the job service's durability checkpoints.
//
// `enzogo serve` runs the simulation job service instead of a one-shot
// problem: an HTTP/JSON API (internal/sim) that schedules, dedupes and
// caches runs across a bounded slot pool. With -data it is durable:
// results, artifacts and checkpoints live under the data directory,
// interrupted jobs resume from their latest checkpoint on the next
// start, and SIGTERM drains gracefully (checkpoint, then exit). See the
// README's "Serving & batch sweeps" section for the endpoints.
//
// With -peers/-self, several serve processes form a static cluster:
// each owns a consistent-hash slice of the job-ID space, routes the
// rest one hop to the owner, and replicates running-job state to each
// job's ring successor so a killed peer's jobs resume elsewhere (see
// ARCHITECTURE.md "Distributed topology").
//
// Scheduling is cost-model driven: completed jobs train a per-problem
// runtime predictor, the slot pool dispatches as a weighted fair-share
// queue over the submissions' tenant labels, and -max-job-seconds turns
// the prediction into an admission bound (see README "QoS & cost
// estimates").
//
// With -speculate, idle slots pre-warm the result cache: announced
// sweeps (POST /sweeps) and lineage-inferred neighbours run as
// lowest-class work, preempted at the next root-step boundary when real
// submissions arrive, so trickling sweep clients find their later rows
// already computed (see README "Speculative warming").
//
//	enzogo serve -addr :8080 -slots 4
//	enzogo serve -addr :8080 -max-job-seconds 300 -tenant-weights sci=3,ops=1
//	enzogo serve -addr :8080 -speculate -speculate-budget-seconds 600
//	enzogo serve -addr :8080 -data /var/lib/enzogo -checkpoint-every 5
//	enzogo serve -addr :8081 -data /var/lib/enzogo1 \
//	    -self http://10.0.0.1:8081 -peers http://10.0.0.1:8081,http://10.0.0.2:8081
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"maps"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/sim/diskstore"
	"repro/internal/snapshot"
)

// serve runs the job service until SIGINT/SIGTERM. With -data it runs
// durably: jobs, results, artifacts and restart checkpoints persist
// under the data directory, interrupted jobs resume on the next start,
// and shutdown drains gracefully (every running job is checkpointed at
// its next root-step boundary before the process exits).
func serve(args []string) {
	fs := flag.NewFlagSet("enzogo serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	slots := fs.Int("slots", 2, "jobs evolving concurrently")
	workers := fs.Int("workers", 0, "total par worker budget partitioned across slots (0 = NumCPU)")
	cache := fs.Int("cache", 64, "completed results retained for dedupe/cache hits")
	queue := fs.Int("queue", 256, "max jobs waiting for a slot")
	artifactBytes := fs.Int("artifact-bytes", sim.DefaultArtifactBytes, "per-job derived-output store budget in bytes (oldest artifacts evicted first)")
	artifactCount := fs.Int("artifact-count", sim.DefaultArtifactCount, "per-job derived-output artifact count budget")
	hotBytes := fs.Int64("hot-bytes", sim.DefaultHotTierBytes, "with -data: in-memory hot-tier budget for artifact payload reads (LRU over the blob store)")
	dataDir := fs.String("data", "", "durable job store directory (empty = in-memory only: nothing survives a restart)")
	ckptEvery := fs.Int("checkpoint-every", 5, "with -data: checkpoint running jobs every N root steps (0 = no step cadence)")
	ckptTime := fs.Float64("checkpoint-time", 0, "with -data: checkpoint running jobs every T code time (0 = no time cadence)")
	maxJobSeconds := fs.Float64("max-job-seconds", 0, "reject submissions the cost model predicts to run longer than this many seconds (0 = no admission bound)")
	tenantWeights := fs.String("tenant-weights", "", "comma-separated tenant=weight fair-share shares, e.g. sci=3,ops=1 (unlisted tenants weigh 1)")
	speculate := fs.Bool("speculate", false, "pre-warm the result cache on idle slots: run announced sweep rows (POST /sweeps) and lineage-inferred neighbours speculatively, preempting them when real work arrives")
	specSlots := fs.Int("speculate-slots", 1, "with -speculate: max jobs running speculatively at once")
	specBudget := fs.Float64("speculate-budget-seconds", 0, "with -speculate: per-tenant wall-second budget for speculative runs (0 = unlimited)")
	specMax := fs.Float64("speculate-max-seconds", 0, "with -speculate: skip candidates the cost model predicts to run longer than this many seconds (0 = no bound)")
	peerList := fs.String("peers", "", "comma-separated advertised base URLs of every cluster peer (empty = single node); requires -self")
	self := fs.String("self", "", "this peer's advertised base URL, must appear in -peers")
	vnodes := fs.Int("ring-vnodes", 0, "virtual nodes per peer on the ownership ring (0 = default); must match on every peer")
	pingEvery := fs.Duration("peer-ping", time.Second, "peer health-check cadence")
	fs.Parse(args)

	cfg := sim.Config{
		MaxConcurrent: *slots,
		TotalWorkers:  *workers,
		CacheSize:     *cache,
		QueueDepth:    *queue,
		ArtifactBytes: *artifactBytes,
		ArtifactCount: *artifactCount,
		HotBytes:      *hotBytes,
		MaxJobSeconds: *maxJobSeconds,

		Speculate:              *speculate,
		SpeculateSlots:         *specSlots,
		SpeculateBudgetSeconds: *specBudget,
		SpeculateMaxSeconds:    *specMax,
	}
	if *tenantWeights != "" {
		weights := map[string]float64{}
		for _, kv := range strings.Split(*tenantWeights, ",") {
			name, val, ok := strings.Cut(kv, "=")
			w, err := strconv.ParseFloat(val, 64)
			if !ok || err != nil || !(w > 0) || strings.TrimSpace(name) == "" {
				log.Fatalf("enzogo serve: bad -tenant-weights entry %q (want tenant=positive-weight)", kv)
			}
			weights[strings.TrimSpace(name)] = w
		}
		cfg.TenantWeights = weights
	}
	if *dataDir != "" {
		store, err := diskstore.New(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
		cfg.CheckpointEvery = *ckptEvery
		cfg.CheckpointTime = *ckptTime
	}
	sched := sim.NewScheduler(cfg)
	if recovered, resumed, err := sched.RecoverState(); err != nil {
		log.Printf("enzogo serve: store recovery: %v", err)
	} else if *dataDir != "" {
		log.Printf("enzogo serve: data dir %s: recovered %d jobs (%d resumed mid-run)",
			*dataDir, recovered, resumed)
	}
	// With -peers, wrap the scheduler in the distributed peer layer: this
	// node owns a consistent-hash slice of the job-ID space, forwards or
	// proxies the rest one hop, and replicates job state to each job's
	// ring successor for takeover if this node dies.
	api := sched.Handler()
	var peer *sim.Peer
	if *peerList != "" {
		members := strings.Split(*peerList, ",")
		var err error
		peer, err = sim.NewPeer(sched, sim.PeerConfig{
			Self:      *self,
			Peers:     members,
			Vnodes:    *vnodes,
			PingEvery: *pingEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		api = peer.Handler()
		log.Printf("enzogo serve: peer %s in a %d-member ring", *self, len(members))
	}
	// The job API plus the standard pprof endpoints: profile a live
	// service with e.g.
	//   go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	log.Printf("enzogo serve: listening on %s (%d slots × %d workers, cache %d)",
		*addr, *slots, sched.SlotWorkers(), *cache)
	if *speculate {
		log.Printf("enzogo serve: speculative warming on (%d slots, budget %gs, max %gs)",
			*specSlots, *specBudget, *specMax)
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown *begins*; wait for the
	// in-flight handlers (e.g. /events streams) to finish before tearing
	// the scheduler down under them.
	<-drained
	if peer != nil {
		// Stop pinging and replicating before the scheduler goes down; the
		// peers' health checks will mark this node dead and take over.
		peer.Close()
	}
	if *dataDir != "" {
		// Graceful drain: running jobs checkpoint at their next root-step
		// boundary and are recorded as interrupted, so the next
		// `enzogo serve -data` resumes them where they stopped.
		sched.Drain()
		log.Printf("enzogo serve: drained with checkpoints into %s and stopped", *dataDir)
		return
	}
	sched.Close()
	log.Printf("enzogo serve: drained and stopped")
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}
	list := flag.Bool("list", false, "list registered problems (name<TAB>description) and exit")
	long := flag.Bool("long", false, "with -list: include what each problem exercises, its example command and -p knobs")
	problem := flag.String("problem", "collapse", "registered problem name (see -list)")
	steps := flag.Int("steps", 20, "root-grid steps to run")
	rootN := flag.Int("rootn", 0, "root grid size, power of two (0 = problem default)")
	maxLevel := flag.Int("maxlevel", 0, "maximum refinement level (0 = problem default)")
	workers := flag.Int("workers", 0, "worker goroutines for all parallel kernels (0 = NumCPU, 1 = serial)")
	chemistry := flag.Bool("chem", true, "enable 12-species chemistry where the problem supports it")
	seed := flag.Int64("seed", 0, "IC random seed (0 = problem default)")
	solver := flag.String("solver", "", "hydro solver: ppm | fd (empty = problem default)")
	extras := map[string]float64{}
	flag.Func("p", "problem-specific knob key=value (repeatable, see README catalog)", func(s string) error {
		key, v, err := problems.ParseKnob(s)
		if err != nil {
			return err
		}
		extras[key] = v
		return nil
	})
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run (IC build + step loop) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	saveOut := flag.String("save", "", "write a self-describing snapshot here after the run")
	restart := flag.String("restart", "", "restart from this snapshot instead of building -problem")
	profileOut := flag.String("profile", "", "write a radial profile table to this file at the end")
	var outputs []analysis.OutputRequest
	flag.Func("output", "derived data product spec kind[,key=value...] (repeatable, see README \"Data products\")", func(s string) error {
		r, err := analysis.ParseOutputRequest(s)
		if err != nil {
			return err
		}
		outputs = append(outputs, r)
		return nil
	})
	outDir := flag.String("outdir", "products", "directory -output artifacts are written to")
	flag.Parse()

	if *list {
		// Specs iterates name-sorted, so -list (and the CI problems
		// matrix cut from it) is deterministic across runs.
		for _, spec := range problems.Specs() {
			fmt.Printf("%s\t%s\n", spec.Name, spec.Summary)
			if *long {
				fmt.Printf("\texercises: %s\n\texample:   %s\n", spec.Exercises, spec.Example)
				for _, k := range slices.Sorted(maps.Keys(spec.Knobs)) {
					fmt.Printf("\t-p %s=...  %s\n", k, spec.Knobs[k])
				}
			}
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var sim *core.Simulation
	var err error
	if *restart != "" {
		h, name, lerr := snapshot.Load(*restart)
		if lerr != nil {
			log.Fatal(lerr)
		}
		// Workers is a runtime knob of the machine that saved the
		// snapshot, not physics: reset to NumCPU for this host (an
		// explicit -workers below still wins).
		h.Cfg.Workers = 0
		// The snapshot header fixes the problem and grid geometry, but
		// explicitly passed physics/runtime flags still apply — the
		// paper's §4 restart-with-additional-levels workflow. Flags
		// that cannot apply to a restart are called out, not dropped
		// silently.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workers":
				h.Cfg.Workers = *workers
			case "maxlevel":
				h.Cfg.MaxLevel = *maxLevel
			case "solver":
				s, serr := problems.ParseSolver(*solver)
				if serr != nil {
					log.Fatal(serr)
				}
				h.Cfg.Solver = s
			case "chem":
				if *chemistry && h.Cfg.NSpecies == 0 {
					log.Fatal("cannot enable chemistry: snapshot was saved without species fields")
				}
				h.Cfg.Chemistry = *chemistry
			case "problem", "rootn", "seed", "p":
				log.Printf("warning: -%s is fixed by the snapshot and ignored on restart", f.Name)
			}
		})
		sim = &core.Simulation{H: h, Problem: name}
		fmt.Printf("restarted %q from %s at t=%.5f\n", name, *restart, h.Time)
	} else {
		sim, err = core.New(*problem, func(o *problems.Opts) {
			// CLI flags override the spec defaults only when set.
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "rootn":
					o.RootN = *rootN
				case "maxlevel":
					o.MaxLevel = *maxLevel
				case "workers":
					o.Workers = *workers
				case "chem":
					o.Chemistry = *chemistry
				case "seed":
					o.Seed = *seed
				case "solver":
					o.Solver = *solver
				}
			})
			for k, v := range extras {
				if o.Extra == nil {
					o.Extra = map[string]float64{}
				}
				o.Extra[k] = v
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Derived data products are evaluated through the same OutputPlan the
	// job service runs, so "-output projection,every=5" means exactly
	// what the HTTP API's outputs field means.
	plan, err := analysis.NewOutputPlan(outputs)
	if err != nil {
		log.Fatal(err)
	}
	if len(outputs) > 0 {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	writeArtifact := func(a analysis.Artifact) error {
		path := filepath.Join(*outDir, a.Name)
		if err := os.WriteFile(path, a.Data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  product %s (%d bytes)\n", path, len(a.Data))
		return nil
	}

	fmt.Printf("problem=%s rootN=%d maxLevel=%d grids=%d\n",
		sim.Problem, sim.H.Cfg.RootN, sim.H.Cfg.MaxLevel, sim.H.NumGrids())
	for s := 0; s < *steps; s++ {
		dt := sim.Step()
		h := sim.History[len(sim.History)-1]
		fmt.Printf("step %3d  t=%.5f dt=%.2e  maxlevel=%d grids=%d  peak=%.4g\n",
			s, h.Time, dt, h.MaxLevel, h.NumGrids, h.PeakRho)
		if err := plan.Step(sim.H, sim.Problem, s, sim.H.Cfg.Workers, writeArtifact); err != nil {
			log.Fatal(err)
		}
	}
	if err := plan.Finish(sim.H, sim.Problem, *steps-1, sim.H.Cfg.Workers, writeArtifact); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(sim.UsageTable())
	fmt.Println(perf.FormatOperatorTable(sim.H.Timing))
	fmt.Println(sim.FlopReport())
	fmt.Printf("SDR achieved: %.0f   grids created: %d   rebuilds: %d\n",
		sim.H.SpatialDynamicRange(), sim.H.Stats.GridsCreated, sim.H.Stats.RebuildCount)

	if *cpuProfile != "" {
		pprof.StopCPUProfile() // idempotent with the deferred stop
		fmt.Printf("cpu profile written to %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("heap profile written to %s\n", *memProfile)
	}
	if *saveOut != "" {
		if err := snapshot.Save(*saveOut, sim.H, sim.Problem); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot written to %s\n", *saveOut)
	}
	if *profileOut != "" {
		pr, err := sim.RadialProfileAtPeak(24)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*profileOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		writeProfile(f, pr)
		fmt.Printf("profile written to %s\n", *profileOut)
	}
}

func writeProfile(f *os.File, pr *analysis.Profile) {
	fmt.Fprintf(f, "# r[box] density enclosed T[K] vr cs fH2 fHI\n")
	for b := range pr.R {
		fmt.Fprintf(f, "%e %e %e %e %e %e %e %e\n",
			pr.R[b], pr.Density[b], pr.Enclosed[b], pr.Temp[b],
			pr.Vr[b], pr.Cs[b], pr.H2Frac[b], pr.HIFrac[b])
	}
}
