// Command enzogo runs one of the built-in problems and reports the
// hierarchy statistics, component-usage table and performance summary —
// the reproduction's equivalent of the paper's production driver.
//
// Usage:
//
//	enzogo -problem collapse -steps 40 -rootn 16 -maxlevel 5
//	enzogo -problem sedov -steps 20
//	enzogo -problem pancake -steps 30
//	enzogo -problem zoom -steps 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/problems"
)

func main() {
	problem := flag.String("problem", "collapse", "problem: collapse | sedov | pancake | zoom")
	steps := flag.Int("steps", 20, "root-grid steps to run")
	rootN := flag.Int("rootn", 16, "root grid size (power of two)")
	maxLevel := flag.Int("maxlevel", 4, "maximum refinement level")
	workers := flag.Int("workers", 0, "worker goroutines for all parallel kernels (0 = NumCPU, 1 = serial)")
	chemistry := flag.Bool("chem", true, "enable 12-species chemistry (collapse/zoom)")
	seed := flag.Int64("seed", 12345, "IC random seed (zoom)")
	profileOut := flag.String("profile", "", "write a radial profile table to this file at the end")
	flag.Parse()

	var sim *core.Simulation
	var err error
	switch *problem {
	case "collapse":
		o := problems.DefaultCollapseOpts()
		o.RootN = *rootN
		o.MaxLevel = *maxLevel
		o.Chemistry = *chemistry
		o.Workers = *workers
		sim, err = core.NewPrimordialCollapse(o)
	case "sedov":
		sim, err = core.NewSedov(*rootN, *maxLevel, 10.0)
	case "pancake":
		sim, err = core.NewPancake(problems.PancakeOpts{RootN: *rootN})
	case "zoom":
		sim, err = core.NewZoom(problems.ZoomOpts{
			RootN: *rootN, StaticLevels: 2, MaxLevel: *maxLevel,
			Seed: *seed, Chemistry: *chemistry,
		})
	default:
		log.Fatalf("unknown problem %q", *problem)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("problem=%s rootN=%d maxLevel=%d grids=%d\n",
		*problem, *rootN, *maxLevel, sim.H.NumGrids())
	for s := 0; s < *steps; s++ {
		dt := sim.Step()
		h := sim.History[len(sim.History)-1]
		fmt.Printf("step %3d  t=%.5f dt=%.2e  maxlevel=%d grids=%d  peak=%.4g\n",
			s, h.Time, dt, h.MaxLevel, h.NumGrids, h.PeakRho)
	}

	fmt.Println()
	fmt.Println(sim.UsageTable())
	fmt.Println(sim.FlopReport())
	fmt.Printf("SDR achieved: %.0f   grids created: %d   rebuilds: %d\n",
		sim.H.SpatialDynamicRange(), sim.H.Stats.GridsCreated, sim.H.Stats.RebuildCount)

	if *profileOut != "" {
		pr, err := sim.RadialProfileAtPeak(24)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*profileOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		writeProfile(f, pr)
		fmt.Printf("profile written to %s\n", *profileOut)
	}
}

func writeProfile(f *os.File, pr *analysis.Profile) {
	fmt.Fprintf(f, "# r[box] density enclosed T[K] vr cs fH2 fHI\n")
	for b := range pr.R {
		fmt.Fprintf(f, "%e %e %e %e %e %e %e %e\n",
			pr.R[b], pr.Density[b], pr.Enclosed[b], pr.Temp[b],
			pr.Vr[b], pr.Cs[b], pr.H2Frac[b], pr.HIFrac[b])
	}
}
