// Command doccheck enforces the repository's documentation contract: in
// every package directory passed to it, each exported top-level
// identifier (funcs, methods on exported types, types, consts, vars) must
// carry a doc comment, and the package itself must have a package
// comment. The CI docs job runs it over the documented packages, so an
// undocumented export fails the build rather than rotting quietly.
//
//	doccheck ./internal/analysis ./internal/sim ...
//
// Exit status 1 lists every offender as file:line: identifier.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck <package-dir>...\n")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		bad += checkDir(dir)
	}
	if bad > 0 {
		log.Fatalf("%d undocumented exported identifiers", bad)
	}
}

// checkDir parses one package directory (tests excluded) and prints every
// undocumented exported identifier, returning how many it found.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		log.Fatalf("%s: %v", dir, err)
	}
	bad := 0
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", dir, name)
			bad++
		}
		for path, f := range pkg.Files {
			bad += checkFile(fset, path, f)
		}
	}
	return bad
}

func checkFile(fset *token.FileSet, path string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s is exported but undocumented\n", fset.Position(pos), what)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv, ok := receiverType(d); ok {
				report(d.Pos(), recv+"."+d.Name.Name)
			} else if d.Recv == nil {
				report(d.Pos(), d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc ("// The supported kinds." above a
					// const block) covers every member; otherwise each
					// exported spec needs its own line.
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
							break
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverType returns the exported receiver type name of a method, and
// whether the method is subject to the check (methods on unexported
// types are not part of the package surface).
func receiverType(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver Foo[T]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			if tt.IsExported() {
				return tt.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}
