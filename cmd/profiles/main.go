// Command profiles runs the primordial collapse and prints Fig.-4 style
// mass-weighted radial profiles at several output times: number density,
// enclosed mass, H2/HI fractions, temperature, and radial velocity vs
// sound speed.
//
//	profiles -outputs 4 -stepsper 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/units"
)

func main() {
	outputs := flag.Int("outputs", 4, "number of output times")
	stepsPer := flag.Int("stepsper", 8, "root steps between outputs")
	rootN := flag.Int("rootn", 16, "root grid size")
	maxLevel := flag.Int("maxlevel", 4, "maximum level")
	nbins := flag.Int("bins", 20, "radial bins")
	flag.Parse()

	sim, err := core.New("collapse", func(o *problems.Opts) {
		o.RootN = *rootN
		o.MaxLevel = *maxLevel
	})
	if err != nil {
		log.Fatal(err)
	}
	u := sim.H.Cfg.Units

	for out := 0; out < *outputs; out++ {
		sim.RunSteps(*stepsPer)
		pr, err := sim.RadialProfileAtPeak(*nbins)
		if err != nil {
			log.Fatal(err)
		}
		a := sim.H.Cfg.Cosmo.A
		fmt.Printf("\n=== output %d  t=%.4f  z=%.2f  maxlevel=%d ===\n",
			out, sim.H.Time, 1/a-1, sim.H.MaxLevel())
		fmt.Printf("%12s %12s %12s %10s %10s %10s %10s\n",
			"r[pc]", "n[cm^-3]", "Menc[Msun]", "T[K]", "vr[km/s]", "cs[km/s]", "fH2")
		boxPc := u.Length / units.ParsecCM
		for b := range pr.R {
			if pr.Mass[b] == 0 {
				continue
			}
			nH := u.NumberDensity(pr.Density[b], 1.22)
			mSun := pr.Enclosed[b] * u.Density * u.Length * u.Length * u.Length / units.MSolarG
			vkms := pr.Vr[b] * u.Velocity / 1e5
			ckms := pr.Cs[b] * u.Velocity / 1e5
			fmt.Printf("%12.4g %12.4g %12.4g %10.4g %10.3f %10.3f %10.3g\n",
				pr.R[b]*boxPc, nH, mSun, pr.Temp[b], vkms, ckms, pr.H2Frac[b])
		}
	}
}
