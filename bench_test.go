package repro

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§3.1 Fig 1, §3.2 Fig 2, §4 Figs 3-4, §5 Fig 5 and the
// component/flop tables, §3.5 EPA), plus the ablation benches DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each bench prints the rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/amr"
	"repro/internal/analysis"
	"repro/internal/chem"
	"repro/internal/clustering"
	"repro/internal/core"
	"repro/internal/ep128"
	"repro/internal/gravity"
	"repro/internal/hydro"
	"repro/internal/mesh"
	"repro/internal/mp"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/problems"
	"repro/internal/units"
)

// --- Parallel engine scaling: serial vs parallel wall-clock for the hot
// kernels on a 64³ root grid, the dominant cost of every benchmark in the
// paper. Run with:
//
//	go test -bench=Scaling -benchmem
//
// Workers=1 is the serial baseline; the w4 (or wNumCPU) rows give the
// measured speedup of the shared par engine. Results are bitwise
// identical across rows (see the *ParallelBitwise tests), so these
// measure pure execution-model gains. ---

func scalingWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// newScalingHierarchy builds a 64³ single-level hierarchy with a smooth
// transonic velocity field, the standard root-grid workload.
func newScalingHierarchy(b *testing.B, rootN, workers int) *amr.Hierarchy {
	cfg := amr.DefaultConfig(rootN)
	cfg.SelfGravity = false
	cfg.JeansN = 0
	cfg.MaxLevel = 0
	cfg.DisableRebuild = true
	cfg.Workers = workers
	h, err := amr.NewHierarchy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	root := h.Root()
	n := rootN
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := float64(i) / float64(n)
				y := float64(j) / float64(n)
				z := float64(k) / float64(n)
				root.State.Rho.Set(i, j, k, 1+0.3*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*(y+z)))
				root.State.Vx.Set(i, j, k, 0.4*math.Sin(2*math.Pi*(x+y)))
				root.State.Vy.Set(i, j, k, -0.3*math.Cos(2*math.Pi*(y+z)))
				root.State.Vz.Set(i, j, k, 0.2*math.Sin(2*math.Pi*(z+x)))
				root.State.Eint.Set(i, j, k, 1.5)
				vx, vy, vz := root.State.Vx.At(i, j, k), root.State.Vy.At(i, j, k), root.State.Vz.At(i, j, k)
				root.State.Etot.Set(i, j, k, 1.5+0.5*(vx*vx+vy*vy+vz*vz))
			}
		}
	}
	return h
}

// BenchmarkProjection measures the SurfaceDensity projection kernel — a
// 128² column-density map with 128 line-of-sight samples over an evolved
// multi-level sedov hierarchy — at 1/2/4/NumCPU workers. This is the hot
// path of the sim service's derived-output pipeline (in-flight data
// products are evaluated at root-step boundaries on the job's worker
// share); results are bitwise identical across rows, so the bench
// measures pure execution-model gains. The baseline history lives in
// BENCH_projection.json (`make bench-projection`).
func BenchmarkProjection(b *testing.B) {
	sim, err := core.New("sedov", func(o *problems.Opts) {
		o.RootN, o.MaxLevel, o.Workers = 32, 2, 1
		o.Extra["e0"] = 50
	})
	if err != nil {
		b.Fatal(err)
	}
	sim.RunSteps(20) // develop the shock until refined grids exist (~step 13)
	if sim.H.MaxLevel() == 0 {
		b.Fatal("projection bench hierarchy did not refine")
	}
	const n, nsamp = 128, 128
	for _, w := range scalingWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.SurfaceDensity(sim.H, 2, 0, 1, 0, 1, n, nsamp, w)
			}
			b.ReportMetric(float64(n*n*nsamp)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkScalingStep64 measures a full 64³ root-grid Hierarchy.Step
// (the PPM pencil sweeps dominate) at 1/2/4/NumCPU workers.
func BenchmarkScalingStep64(b *testing.B) {
	for _, w := range scalingWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			h := newScalingHierarchy(b, 64, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Step()
			}
			b.ReportMetric(float64(h.Stats.CellUpdates)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkChemistry measures the 12-species primordial network and
// cooling kernel: chem.Pencil row batches driven by par.For — the
// chemistry operator's execution model — over a 32³ block of cells
// spanning the collapse's density range (1e-2..1e2 cm⁻³, a few hundred K)
// at 1/2/4/NumCPU workers. Every cell is an independent stiff
// integration, so results are bitwise identical across rows; the baseline
// history lives in BENCH_kernels.json (`make bench-kernels`).
func BenchmarkChemistry(b *testing.B) {
	const n = 32
	cp := chem.CoolParams{Redshift: 20}
	sp := chem.DefaultSolverParams()
	const dt = 3e11 // ~10 kyr in seconds, a typical chemistry step at these densities
	for _, w := range scalingWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				par.For(w, n*n, 0, func(_, lo, hi int) {
					pen := chem.NewPencil(n)
					for row := lo; row < hi; row++ {
						for i := 0; i < n; i++ {
							cell := row*n + i
							nH := math.Pow(10, -2+4*float64(cell%97)/96)
							s := chem.Primordial(nH, 3e-4, 2e-6)
							for spc := 0; spc < chem.NumSpecies; spc++ {
								pen.Species[spc][i] = s[spc]
							}
							pen.Eint[i] = chem.EintFromT(s, 150+50*float64(cell%53), 5.0/3)
						}
						pen.Evolve(dt, cp, sp)
					}
				})
			}
			b.ReportMetric(float64(n*n*n)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkScalingGravityFFT64 measures the periodic Poisson solve (FFT
// line batches) on a 64³ root grid.
func BenchmarkScalingGravityFFT64(b *testing.B) {
	rho := mesh.NewField3(64, 64, 64, 1)
	for k := 0; k < 64; k++ {
		for j := 0; j < 64; j++ {
			for i := 0; i < 64; i++ {
				rho.Set(i, j, k, math.Sin(float64(i)*0.2)+math.Cos(float64(j+2*k)*0.13))
			}
		}
	}
	for _, w := range scalingWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gravity.SolvePeriodicWorkers(rho, 1.0/64, 1.0, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingMultigrid64 measures the red-black multigrid V-cycles
// used for subgrid gravity on a 64³ grid.
func BenchmarkScalingMultigrid64(b *testing.B) {
	rhs := mesh.NewField3(64, 64, 64, 1)
	for k := 0; k < 64; k++ {
		for j := 0; j < 64; j++ {
			for i := 0; i < 64; i++ {
				rhs.Set(i, j, k, math.Sin(float64(i+j)*0.31)*math.Cos(float64(k)*0.17))
			}
		}
	}
	for _, w := range scalingWorkerCounts() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			p := gravity.DefaultMGParams()
			p.Workers = w
			p.MaxVCycles = 4
			for i := 0; i < b.N; i++ {
				phi := mesh.NewField3(64, 64, 64, 1)
				gravity.SolveMultigrid(phi, rhs, 1.0/64, p)
			}
		})
	}
}

// --- Figure 1: the 2-D SAMR example (root + two subgrids + one
// sub-subgrid) realized by the hierarchy machinery on an analytic
// refinement pattern. ---

func BenchmarkFig1HierarchyExample(b *testing.B) {
	var h *amr.Hierarchy
	for i := 0; i < b.N; i++ {
		cfg := amr.DefaultConfig(16)
		cfg.SelfGravity = false
		cfg.JeansN = 0
		cfg.MaxLevel = 2
		cfg.MassThresholdGas = 1.5 / (16.0 * 16 * 16)
		hh, err := amr.NewHierarchy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		root := hh.Root()
		root.State.Rho.Fill(1)
		root.State.Eint.Fill(1)
		root.State.Etot.Fill(1)
		// Two separated features, one with interior fine structure —
		// clustering should produce two subgrids and a sub-subgrid.
		for _, c := range [][3]int{{4, 4, 4}, {11, 11, 11}} {
			for dk := 0; dk < 2; dk++ {
				for dj := 0; dj < 2; dj++ {
					for di := 0; di < 2; di++ {
						root.State.Rho.Set(c[0]+di, c[1]+dj, c[2]+dk, 3)
					}
				}
			}
		}
		root.State.Rho.Set(4, 4, 4, 40) // deep feature -> level 2
		hh.RebuildHierarchy(1)
		h = hh
	}
	b.ReportMetric(float64(len(h.Levels[1])), "subgrids")
	b.ReportMetric(float64(h.MaxLevel()), "depth")
	if b.N > 0 {
		b.Logf("Fig 1 structure: grids/level = %v (tree: root -> %d subgrids -> sub-subgrids)",
			h.GridsPerLevel(), len(h.Levels[1]))
	}
}

// --- Figure 2: the W-cycle timestep ordering — subgrids take r sub-steps
// per parent step and all levels end synchronized. ---

func BenchmarkFig2WCycle(b *testing.B) {
	var order []int
	for i := 0; i < b.N; i++ {
		cfg := amr.DefaultConfig(16)
		cfg.SelfGravity = false
		cfg.JeansN = 0
		cfg.StaticLevels = 2
		cfg.StaticLo = [3]float64{0.25, 0.25, 0.25}
		cfg.StaticHi = [3]float64{0.75, 0.75, 0.75}
		cfg.MaxLevel = 2
		h, err := amr.NewHierarchy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		h.Root().State.Rho.Fill(1)
		h.Root().State.Eint.Fill(1)
		h.Root().State.Etot.Fill(1)
		h.RebuildHierarchy(1)
		before := h.Stats.CellUpdates
		h.Step()
		_ = before
		order = h.GridsPerLevel()
	}
	b.Logf("Fig 2: one root step advanced %d levels W-cycle-style, grids/level %v", len(order), order)
}

// --- Figure 3: zoom slice frames about the densest point. ---

func BenchmarkFig3ZoomSlices(b *testing.B) {
	opts := problems.DefaultCollapseOpts()
	opts.RootN = 16
	opts.MaxLevel = 3
	opts.Chemistry = false
	sim, err := core.NewPrimordialCollapse(opts)
	if err != nil {
		b.Fatal(err)
	}
	sim.RunSteps(6)
	b.ResetTimer()
	var frames [][][]float64
	for i := 0; i < b.N; i++ {
		frames = sim.ZoomFrames(4, 10, 64)
	}
	b.ReportMetric(float64(len(frames)), "frames")
	lo0, hi0 := frames[0][0][0], frames[0][0][0]
	for _, row := range frames[0] {
		for _, v := range row {
			lo0 = math.Min(lo0, v)
			hi0 = math.Max(hi0, v)
		}
	}
	b.Logf("Fig 3: %d frames, x10 zoom each; frame0 log-density range [%.2f, %.2f]", len(frames), lo0, hi0)
}

// --- Figure 4: radial profiles at successive output times of the
// primordial collapse (panels A-E: n(r), M(<r), species fractions, T,
// vr & cs). ---

func BenchmarkFig4RadialProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := problems.DefaultCollapseOpts()
		opts.RootN = 16
		opts.MaxLevel = 4
		sim, err := core.NewPrimordialCollapse(opts)
		if err != nil {
			b.Fatal(err)
		}
		u := sim.H.Cfg.Units
		for out := 0; out < 3; out++ {
			sim.RunSteps(4)
			pr, err := sim.RadialProfileAtPeak(16)
			if err != nil {
				b.Fatal(err)
			}
			if out == 2 && i == 0 {
				b.Logf("Fig 4 final output (t=%.3f):", sim.H.Time)
				boxPc := u.Length / units.ParsecCM
				for bn := range pr.R {
					if pr.Mass[bn] == 0 {
						continue
					}
					b.Logf("  r=%8.3g pc  n=%10.4g cm^-3  T=%8.4g K  vr=%7.3f km/s  fH2=%.3g",
						pr.R[bn]*boxPc, u.NumberDensity(pr.Density[bn], 1.22),
						pr.Temp[bn], pr.Vr[bn]*u.Velocity/1e5, pr.H2Frac[bn])
				}
			}
		}
	}
}

// --- Figure 5: hierarchy growth — max level and grid count vs time,
// grids/level and work/level at two epochs. ---

func BenchmarkFig5HierarchyGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := problems.DefaultCollapseOpts()
		opts.RootN = 16
		opts.MaxLevel = 4
		opts.Chemistry = false
		sim, err := core.NewPrimordialCollapse(opts)
		if err != nil {
			b.Fatal(err)
		}
		sim.RunSteps(14)
		if i == 0 {
			b.Logf("Fig 5 series (time, maxlevel, ngrids):")
			for s, smp := range sim.History {
				if s%2 == 0 {
					b.Logf("  t=%.4f  level=%d  grids=%d", smp.Time, smp.MaxLevel, smp.NumGrids)
				}
			}
			early := sim.History[len(sim.History)/4]
			late := sim.History[len(sim.History)-1]
			b.Logf("  grids/level early=%v late=%v", early.GridsPer, late.GridsPer)
			b.Logf("  work/level late=%v", late.WorkPer)
		}
	}
}

// --- §5 component-usage table. ---

func BenchmarkTableComponentUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := problems.DefaultCollapseOpts()
		opts.RootN = 16
		opts.MaxLevel = 3
		sim, err := core.NewPrimordialCollapse(opts)
		if err != nil {
			b.Fatal(err)
		}
		sim.RunSteps(6)
		if i == 0 {
			b.Logf("§5 component table (paper: hydro 36%%, Poisson 17%%, chem 11%%, N-body 1%%, rebuild 9%%, BCs 15%%, other 11%%):\n%s",
				sim.UsageTable())
		}
	}
}

// --- §5 flop-rate rows: sustained estimate + the virtual-rate exercise. ---

func BenchmarkTableFlopRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := problems.DefaultCollapseOpts()
		opts.RootN = 16
		opts.MaxLevel = 3
		opts.Chemistry = false
		sim, err := core.NewPrimordialCollapse(opts)
		if err != nil {
			b.Fatal(err)
		}
		sim.RunSteps(8)
		if i == 0 {
			b.Logf("%s", sim.FlopReport())
			ops, rate := perf.PaperVirtualExercise()
			b.Logf("paper virtual exercise: ops=%.3g (paper ~1e50), rate=%.3g flop/s (paper ~1e44)", ops, rate)
		}
	}
}

// --- §3.5 EPA table: 128-bit cost vs 64-bit and the ~5%% usage policy. ---

func BenchmarkTableEPAOverhead(b *testing.B) {
	x64, y64 := 1.2345678901234567, 1.0000000001
	xdd := ep128.FromFloat64(x64)
	ydd := ep128.FromFloat64(y64)
	b.Run("float64-mul", func(b *testing.B) {
		var r float64
		for i := 0; i < b.N; i++ {
			r = x64 * y64
		}
		_ = r
	})
	b.Run("dd-mul", func(b *testing.B) {
		var r ep128.Dd
		for i := 0; i < b.N; i++ {
			r = xdd.Mul(ydd)
		}
		_ = r
	})
	b.Run("position-update-mixed", func(b *testing.B) {
		// The paper's policy: absolute positions in EPA (~5% of ops),
		// relative arithmetic in float64.
		pos := ep128.FromFloat64(0.5)
		vel := 1e-18
		var rel float64
		for i := 0; i < b.N; i++ {
			pos = pos.AddFloat(vel) // 1 EPA op
			// ~19 relative float64 ops for every EPA op (5%).
			for j := 0; j < 19; j++ {
				rel += vel * float64(j)
			}
		}
		_ = rel
		_ = pos
	})
}

// --- Ablations (DESIGN.md §5). ---

// BenchmarkAblationSolverComparison: PPM vs the robust FD solver on the
// same collapse (the paper's "double check on any result").
func BenchmarkAblationSolverComparison(b *testing.B) {
	for _, solver := range []hydro.Solver{hydro.SolverPPM, hydro.SolverFD} {
		b.Run(solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := problems.DefaultCollapseOpts()
				opts.RootN = 16
				opts.MaxLevel = 3
				opts.Chemistry = false
				opts.Solver = solver
				sim, err := core.NewPrimordialCollapse(opts)
				if err != nil {
					b.Fatal(err)
				}
				sim.RunSteps(8)
				_, peak := analysis.DensestPoint(sim.H)
				b.ReportMetric(peak, "peak-density")
			}
		})
	}
}

// BenchmarkAblationJeansN sweeps the cells-per-Jeans-length refinement
// parameter (paper: varied 4 to 64 "without seeing a significant
// difference" in the result — only in cost). At toy scale large N_J
// refines most of the box, so the sweep is capped at 8 with a shallower
// hierarchy; the paper's observation shows as a stable peak density with
// growing grid counts.
func BenchmarkAblationJeansN(b *testing.B) {
	for _, nj := range []float64{4, 6, 8} {
		b.Run(fmt.Sprintf("NJ%.0f", nj), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := problems.DefaultCollapseOpts()
				opts.RootN = 16
				opts.MaxLevel = 2
				opts.Chemistry = false
				opts.JeansN = nj
				sim, err := core.NewPrimordialCollapse(opts)
				if err != nil {
					b.Fatal(err)
				}
				sim.RunSteps(4)
				_, peak := analysis.DensestPoint(sim.H)
				b.ReportMetric(peak, "peak-density")
				b.ReportMetric(float64(sim.H.NumGrids()), "grids")
			}
		})
	}
}

// BenchmarkAblationStaticLevels compares 2 vs 3 static zoom levels
// (paper §4: "we have experimented with using only two additional levels
// and find it has little effect").
func BenchmarkAblationStaticLevels(b *testing.B) {
	for _, lv := range []int{2, 3} {
		b.Run(fmt.Sprintf("static%d", lv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, _, err := problems.CosmologicalZoom(problems.ZoomOpts{
					RootN: 8, StaticLevels: lv, MaxLevel: lv, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < 2; s++ {
					h.Step()
				}
				_, peak := analysis.DensestPoint(h)
				b.ReportMetric(peak, "peak-density")
			}
		})
	}
}

// BenchmarkAblationSterileObjects measures the probe traffic the sterile
// replicas eliminate (§3.4).
func BenchmarkAblationSterileObjects(b *testing.B) {
	for _, sterile := range []bool{true, false} {
		name := "sterile"
		if !sterile {
			name = "probing"
		}
		b.Run(name, func(b *testing.B) {
			rt, _ := mp.NewRuntime(64)
			cat := mp.NewCatalog(rt, sterile)
			for i := 0; i < 500; i++ {
				cat.Register(mp.GridMeta{ID: i, Level: i % 8, Lo: [3]int{i, 0, 0}, N: [3]int{16, 16, 16}, Owner: i % 64})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cat.Owner(i % 500)
			}
			_, _, probes := rt.Stats()
			b.ReportMetric(float64(probes)/float64(b.N), "probes/lookup")
		})
	}
}

// BenchmarkAblationPipelinedComm compares pipelined vs interleaved
// exchange wait times (§3.4: "a large decrease in wait times").
func BenchmarkAblationPipelinedComm(b *testing.B) {
	var xfers []mp.Xfer
	for r := 0; r < 64; r++ {
		for p := 0; p < 6; p++ {
			xfers = append(xfers, mp.Xfer{From: r, To: (r + p*11 + 1) % 64, Bytes: 16384 + 1024*p, NeedOrder: p})
		}
	}
	net := mp.DefaultNetParams()
	for _, pipelined := range []bool{true, false} {
		name := "pipelined"
		if !pipelined {
			name = "interleaved"
		}
		b.Run(name, func(b *testing.B) {
			var res mp.ExchangeResult
			for i := 0; i < b.N; i++ {
				res = mp.SimulateExchange(xfers, 64, net, pipelined)
			}
			b.ReportMetric(res.TotalWait*1e6, "wait-us")
		})
	}
}

// BenchmarkAblationLoadBalance reports the imbalance of distributing a
// deep hierarchy's grids over 64 ranks (paper: ~40% of wall time went to
// communication + imbalance).
func BenchmarkAblationLoadBalance(b *testing.B) {
	var metas []mp.GridMeta
	id := 0
	for lv := 0; lv < 8; lv++ {
		for g := 0; g < 1<<lv; g++ {
			metas = append(metas, mp.GridMeta{ID: id, Level: lv, N: [3]int{20, 20, 20}})
			id++
		}
	}
	b.ResetTimer()
	var imb float64
	for i := 0; i < b.N; i++ {
		_, imb = mp.BalanceLPT(metas, mp.WorkWeight(2), 64)
	}
	b.ReportMetric(imb, "imbalance")
}

// BenchmarkClusteringScaling exercises the Berger-Rigoutsos cost on a
// realistic flag field (rebuild is ~10% of cpu time in the paper).
func BenchmarkClusteringScaling(b *testing.B) {
	fl := clustering.NewFlags(32, 32, 32)
	for k := 0; k < 32; k++ {
		for j := 0; j < 32; j++ {
			for i := 0; i < 32; i++ {
				d2 := (i-16)*(i-16) + (j-16)*(j-16) + (k-16)*(k-16)
				if d2 < 64 || (i > 24 && j > 24) {
					fl.Set(i, j, k, true)
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clustering.Cluster(fl, clustering.DefaultParams())
	}
}
