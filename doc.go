// Package repro is a from-scratch Go reproduction of "Achieving Extreme
// Resolution in Numerical Cosmology Using Adaptive Mesh Refinement:
// Resolving Primordial Star Formation" (Bryan, Abel & Norman, SC 2001) —
// the Enzo cosmological AMR code and its primordial star formation
// application.
//
// The library lives under internal/: the SAMR engine (internal/amr), two
// hydro solvers (internal/hydro), FFT+multigrid gravity
// (internal/gravity), adaptive particle-mesh N-body (internal/nbody), the
// 12-species primordial chemistry network (internal/chem), 128-bit
// extended precision arithmetic (internal/ep128), Berger–Rigoutsos
// clustering (internal/clustering), the message-passing runtime model
// (internal/mp), cosmological initial conditions (internal/cosmology),
// analysis tools (internal/analysis) and the Simulation façade
// (internal/core).
//
// # Parallel execution model
//
// All hot kernels run on the shared data-parallel engine in internal/par:
// a bounded worker pool with dynamic chunk stealing (par.For) plus
// per-worker scratch slots (par.Scratch). One knob — amr.Config.Workers —
// bounds the goroutines used by
//
//   - the hydro pencil sweeps (per-worker pencils recycled via sync.Pool),
//   - red-black multigrid smoothing, residual and prolongation passes,
//   - the batched 1-D line transforms of the 3-D FFT Poisson solve,
//   - the per-cell chemistry backward-Euler solver,
//   - the CIC particle deposit (per-range buffers reduced in fixed order),
//   - and whole-grid stepping within an AMR level.
//
// The conventions are 0 = runtime.NumCPU() (the default), 1 = serial,
// n = exactly n workers. Grid kernels partition strictly disjoint data
// (pencil lines, same-color cells, FFT lines), so their parallel results
// are bitwise identical to the serial ones at any worker count; only the
// N-body deposit reduces per-range partial sums, in a fixed order that is
// deterministic for a given worker count. The *ParallelBitwise tests in
// each package enforce this.
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
// record. The BenchmarkScaling* benches measure serial-vs-parallel
// speedup of the hot kernels (the paper's §5 component table, whose
// wall-clock decomposition perf.UsageTable reproduces, is the map of
// where those cycles go).
package repro
