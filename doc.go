// Package repro is a from-scratch Go reproduction of "Achieving Extreme
// Resolution in Numerical Cosmology Using Adaptive Mesh Refinement:
// Resolving Primordial Star Formation" (Bryan, Abel & Norman, SC 2001) —
// the Enzo cosmological AMR code and its primordial star formation
// application.
//
// The library lives under internal/: the SAMR engine (internal/amr), two
// hydro solvers (internal/hydro), FFT+multigrid gravity
// (internal/gravity), adaptive particle-mesh N-body (internal/nbody), the
// 12-species primordial chemistry network (internal/chem), 128-bit
// extended precision arithmetic (internal/ep128), Berger–Rigoutsos
// clustering (internal/clustering), the message-passing runtime model
// (internal/mp), cosmological initial conditions (internal/cosmology),
// analysis tools (internal/analysis) and the Simulation façade
// (internal/core).
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
// record.
package repro
