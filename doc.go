// Package repro is a from-scratch Go reproduction of "Achieving Extreme
// Resolution in Numerical Cosmology Using Adaptive Mesh Refinement:
// Resolving Primordial Star Formation" (Bryan, Abel & Norman, SC 2001) —
// the Enzo cosmological AMR code and its primordial star formation
// application.
//
// The library lives under internal/: the SAMR engine (internal/amr), the
// operator-split physics pipeline (internal/physics), two hydro solvers
// (internal/hydro), FFT+multigrid gravity (internal/gravity), adaptive
// particle-mesh N-body (internal/nbody), the 12-species primordial
// chemistry network (internal/chem), 128-bit extended precision
// arithmetic (internal/ep128), Berger–Rigoutsos clustering
// (internal/clustering), the message-passing runtime model (internal/mp),
// cosmological initial conditions (internal/cosmology), the problem
// registry (internal/problems), analysis tools and the derived-output
// pipeline (internal/analysis), the job service (internal/sim) and the
// Simulation façade (internal/core). docs/ARCHITECTURE.md maps the
// packages, the W-cycle and job-service dataflows, and the paper-section
// → package cross-reference in detail.
//
// # Registering a new problem
//
// Problem setups are declarative registry entries, not driver edits: one
// problems.Register call makes a scenario available to the enzogo CLI
// (-problem name, listed by -list), core.New, the table-driven smoke
// tests and the CI problem matrix. A Spec carries a one-line summary,
// the problem's default Opts, and a builder from Opts to an initialized
// hierarchy:
//
//	problems.Register(problems.Spec{
//		Name:     "blob",
//		Summary:  "dense cloud crushed by a supersonic wind",
//		Defaults: problems.Opts{RootN: 32, MaxLevel: 2},
//		Build: func(o problems.Opts) (*amr.Hierarchy, error) {
//			cfg := amr.DefaultConfig(o.RootN)
//			// ... fill the root grid's fields ...
//			h, err := amr.NewHierarchy(cfg)
//			// ...
//			h.RebuildHierarchy(1)
//			return h, nil
//		},
//	})
//
// Problem-specific numeric knobs go in Opts.Extra (bound to repeated
// "-p key=value" CLI flags) and are read with o.ExtraOr(key, default).
//
// # Registering a new physics operator
//
// The hierarchy advances each grid by running Hierarchy.Physics, an
// ordered physics.Pipeline of operator-split components (gravity
// half-kick, hydro, half-kick, N-body KDK, expansion drag, chemistry by
// default, plus the level-wide Poisson solve as a per-level stage). An
// operator sees only a physics.Grid view and the run's physics.Context,
// so it runs unchanged on every grid of every level — the paper's
// "off-the-shelf solver" architecture. To add physics (a tracer field,
// a heating source, star formation), implement physics.Operator —
// Name, Timing Component, ghost-zone depth NGhost, per-grid Apply, and
// a Timestep constraint hook (return math.Inf(1) when unconstrained) —
// and splice it in:
//
//	h.Physics.Append(myOp)                         // after chemistry
//	h.Physics.InsertBefore("chemistry", myOp)      // or mid-pipeline
//
// Operators whose work couples a whole level implement
// physics.LevelOperator; ApplyLevel runs once per level step before the
// per-grid sweep. Wall-clock time is billed per operator into
// amr.Timing (Timing.PerOp, rendered by perf.FormatOperatorTable) so a
// new component shows up in the §5 usage table automatically.
//
// # Parallel execution model
//
// All hot kernels run on the shared data-parallel engine in internal/par:
// a bounded worker pool with dynamic chunk stealing (par.For) plus
// per-worker scratch slots (par.Scratch). One knob — amr.Config.Workers —
// bounds the goroutines used by
//
//   - the hydro pencil sweeps (per-worker pencils recycled via sync.Pool),
//   - red-black multigrid smoothing, residual and prolongation passes,
//   - the batched 1-D line transforms of the 3-D FFT Poisson solve,
//   - the per-cell chemistry backward-Euler solver,
//   - the CIC particle deposit (per-range buffers reduced in fixed order),
//   - and whole-grid stepping within an AMR level.
//
// The conventions are 0 = runtime.NumCPU() (the default), 1 = serial,
// n = exactly n workers. Grid kernels partition strictly disjoint data
// (pencil lines, same-color cells, FFT lines), so their parallel results
// are bitwise identical to the serial ones at any worker count; only the
// N-body deposit reduces per-range partial sums, in a fixed order that is
// deterministic for a given worker count. The *ParallelBitwise tests in
// each package enforce this.
//
// # Serving simulations as jobs
//
// internal/sim turns one-shot runs into a job service: a bounded
// scheduler evolves several problems concurrently (partitioning the par
// worker budget across its slots), dedupes identical submissions onto a
// single execution, caches completed results under a canonical
// configuration hash, and streams per-step progress over channels. The
// enzogo `serve` subcommand exposes it as an HTTP/JSON API and enzobatch
// drives sweep files through it, but embedding it in any binary is
// direct:
//
//	sched := sim.NewScheduler(sim.Config{MaxConcurrent: 4})
//	defer sched.Close()
//	job, err := sched.Submit(sim.Request{
//		Problem: "sedov", Steps: 20,
//		Knobs: map[string]float64{"e0": 50},
//	})
//	for p := range job.Watch() { // one Progress per root step
//		log.Printf("step %d t=%g dt=%g", p.Step, p.Time, p.Dt)
//	}
//	res, err := job.Result() // res.Hash = amr.Checksum of the answer
//
// A result's Hash is bitwise comparable to a direct core.New run of the
// same resolved configuration, and to the golden regression hashes in
// internal/problems/testdata/golden.json — the table-driven suite
// (golden_test.go) that pins every registered problem's 2-step 16³
// evolution and fails CI on any unintentional numerics drift
// (regenerate intentionally with `make golden-update`). To serve over
// HTTP, mount sim.(*Scheduler).Handler on any mux.
//
// Persistence is pluggable (sim.Store): wire internal/sim/diskstore
// under the scheduler (`enzogo serve -data dir`, sim.Config.Store) and
// the service becomes durable — completed results and artifacts survive
// restarts as cache hits, running jobs checkpoint on a cadence
// (Config.CheckpointEvery/CheckpointTime) and resume bitwise-identically
// after a kill, and Scheduler.Drain checkpoints everything running
// before a graceful exit. docs/ARCHITECTURE.md ("Durability & recovery")
// has the on-disk layout and the recovery sequence.
//
// # Derived data products
//
// Jobs return science products, not just hashes: a Request may carry
// analysis.OutputRequests — declarative slices, projections, radial
// profiles, clump catalogs or snapshots with a cadence in root steps or
// code time — which the scheduler evaluates at root-step boundaries into
// a bounded per-job artifact store, served under /jobs/{id}/artifacts
// (JSON index, typed bodies, NDJSON artifact-ready stream):
//
//	job, _ := sched.Submit(sim.Request{
//		Problem: "sedov", Steps: 20,
//		Outputs: []analysis.OutputRequest{
//			{Kind: analysis.KindProjection, Field: "rho", Axis: 2, N: 128, Every: 5},
//			{Kind: analysis.KindProfile, N: 32}, // once, at the end of the run
//		},
//	})
//	res, _ := job.Wait(ctx)
//	for _, a := range job.Artifacts().All() {
//		os.WriteFile(a.Name, a.Data, 0o644)
//	}
//
// The same requests drive `enzogo -output` (one-shot runs, files in
// -outdir) and sweep rows' "outputs" lists (enzobatch -artifacts).
// The sampling loops run on par.For with per-row or per-grid partials
// reduced in a fixed order, so the analysis itself is bitwise invariant
// to the worker count; on particle-free problems the whole product is,
// and a served artifact can be verified byte-for-byte against an
// offline core.New evaluation (particle runs reproduce exactly for a
// given worker budget — the CIC deposit's reduction order is the one
// worker-dependent kernel, which is why Workers is part of the job
// identity). See the README's "Data products" section for the
// field/kind catalog and curl examples.
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
// record. The BenchmarkScaling* benches measure serial-vs-parallel
// speedup of the hot kernels (the paper's §5 component table, whose
// wall-clock decomposition perf.UsageTable reproduces, is the map of
// where those cycles go). BenchmarkSimThroughput (`make bench-sim`)
// tracks job-service throughput against the BENCH_sim.json baseline.
package repro
